package analysis

import (
	"go/ast"
	"go/types"
)

// CtxLeak flags goroutines that cannot be shut down. PR 5 fixed this
// class by hand — RefineBatch/RefineStream goroutines learned to abort
// between views when the job context is cancelled — and the daemon's
// graceful-drain contract depends on every long-lived goroutine in the
// service and execution layers (internal/serve, internal/pool,
// internal/cluster, internal/parfft) having *some* termination path.
//
// A `go` statement in a scoped package is a finding when the launched
// function has no cancellation path:
//
//   - it is joined in the launching function (a sync.WaitGroup.Wait in
//     the same declaration) — the bounded fan-out/fan-in shape of
//     internal/pool — or
//   - it, or any function it statically reaches through the call
//     graph, receives from a channel (<-ch, range over a channel, any
//     select) or consults a context.Context (Done/Err/Deadline/Value
//     method calls) — closing the feeding channel or cancelling the
//     context terminates it.
//
// Everything else is a goroutine that outlives its job: it leaks on
// shutdown and holds its captures live. `go` statements whose callee
// cannot be resolved statically (interface methods, function-typed
// parameters) are skipped rather than guessed at.
var CtxLeak = &Analyzer{
	Name: "ctxleak",
	Doc: "goroutines in service/execution packages must be cancellable: joined by a " +
		"WaitGroup in the launcher, or (transitively) receiving from a channel or a context",
	Run: runCtxLeak,
}

func runCtxLeak(pass *Pass) {
	g := pass.Facts.Graph

	// cancellable memoizes, per declared function, whether the
	// function or anything it reaches has a termination construct.
	memo := map[types.Object]bool{}
	var cancellableNode func(obj types.Object) bool
	cancellableNode = func(obj types.Object) bool {
		if v, ok := memo[obj]; ok {
			return v
		}
		n := g.Nodes[obj]
		if n == nil {
			return false
		}
		memo[obj] = false // cycle-safe default while exploring
		if hasCancelConstruct(n.Pkg.Info, n.Decl.Body) {
			memo[obj] = true
			return true
		}
		for _, e := range n.Out {
			if cancellableNode(e.Callee) {
				memo[obj] = true
				return true
			}
		}
		return memo[obj]
	}

	for _, pkg := range pass.Pkgs {
		if !pass.Config.matches(pass.Config.ConcurrencyPaths, pkg.Path) {
			continue
		}
		for _, file := range pkg.Files {
			if isTestFile(pass.Fset, file) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				fd := enclosingFuncDecl(file, gs.Pos())
				if fd != nil && joinsWaitGroup(pkg.Info, fd) {
					return true
				}
				var single map[types.Object]types.Object
				if fd != nil {
					single = singleAssignFuncLocals(pkg.Info, fd)
				}
				launchedOK, resolved := launchCancellable(pkg, gs, single, cancellableNode)
				if !resolved || launchedOK {
					return true
				}
				pass.Reportf(gs.Pos(),
					"goroutine has no cancellation path: %s neither receives from a channel nor reads a context, and the launcher never joins it; it outlives shutdown",
					launchName(gs.Call))
				return true
			})
		}
	}
}

// launchCancellable inspects the launched callee of a go statement.
// The second result is false when the callee cannot be resolved.
func launchCancellable(pkg *Package, gs *ast.GoStmt, single map[types.Object]types.Object, cancellableNode func(types.Object) bool) (ok, resolved bool) {
	if lit, isLit := gs.Call.Fun.(*ast.FuncLit); isLit {
		if hasCancelConstruct(pkg.Info, lit.Body) {
			return true, true
		}
		// Calls made inside the literal may delegate the wait.
		found := false
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			call, isCall := m.(*ast.CallExpr)
			if !isCall || found {
				return !found
			}
			if t := resolveCallee(pkg.Info, call.Fun, single); t != nil && cancellableNode(t) {
				found = true
			}
			return !found
		})
		return found, true
	}
	t := resolveCallee(pkg.Info, gs.Call.Fun, single)
	if t == nil {
		return false, false
	}
	return cancellableNode(t), true
}

// hasCancelConstruct scans a body for any construct that lets the
// goroutine observe shutdown: a channel receive, a range over a
// channel, a select, or a context.Context method call.
func hasCancelConstruct(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.UnaryExpr:
			if e.Op.String() == "<-" {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if tv, ok := info.Types[e.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[e]; ok && sel.Kind() == types.MethodVal {
				if named, okN := sel.Recv().(*types.Named); okN {
					o := named.Obj()
					if o.Pkg() != nil && o.Pkg().Path() == "context" && o.Name() == "Context" {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// joinsWaitGroup reports whether fd calls (*sync.WaitGroup).Wait —
// the launcher-side join that bounds its goroutines' lifetime.
func joinsWaitGroup(info *types.Info, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Wait" {
			return true
		}
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.FullName() == "(*sync.WaitGroup).Wait" {
			found = true
		}
		return !found
	})
	return found
}

// launchName renders the launched callee for the report.
func launchName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.FuncLit:
		return "the goroutine body"
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "the launched function"
}
