package analysis

import (
	"bufio"
	"bytes"
	"fmt"
	"sort"
	"strings"
)

// Baseline support: a checked-in replint.baseline file lets a new
// (or newly strict) analyzer land immediately — legacy findings are
// recorded once and stop failing the build, while anything not in the
// file still gates. CI regenerates the file with -write-baseline and
// fails when it differs from the checked-in copy, so the baseline can
// only shrink deliberately and can never drift stale.
//
// Format: one finding per line in the canonical text form
//
//	relative/path.go:line:col: [analyzer] message
//
// with '#' comments and blank lines ignored. Entries are written
// sorted, so regeneration is diff-stable.

// baselineHeader documents the file for people who open it.
const baselineHeader = `# replint baseline — findings grandfathered in when an analyzer landed.
# Regenerate with: go run ./cmd/replint -write-baseline
# CI fails when this file does not match a fresh regeneration, so it
# can never go stale; shrink it by fixing findings, never grow it by hand.
`

// FormatBaselineLine renders one finding in the baseline's (and the
// text reporter's) canonical relative form.
func FormatBaselineLine(f Finding, root string) string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", relPath(root, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// WriteBaseline renders findings as a baseline file body.
func WriteBaseline(findings []Finding, root string) []byte {
	lines := make([]string, 0, len(findings))
	for _, f := range findings {
		lines = append(lines, FormatBaselineLine(f, root))
	}
	sort.Strings(lines)
	var b bytes.Buffer
	b.WriteString(baselineHeader)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// ParseBaseline reads a baseline file body into the set of recorded
// finding lines.
func ParseBaseline(data []byte) map[string]bool {
	out := map[string]bool{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out[line] = true
	}
	return out
}

// ApplyBaseline splits findings into the ones still gating (not in
// the baseline) and the ones the baseline absorbs.
func ApplyBaseline(findings []Finding, baseline map[string]bool, root string) (fresh, absorbed []Finding) {
	for _, f := range findings {
		if baseline[FormatBaselineLine(f, root)] {
			absorbed = append(absorbed, f)
		} else {
			fresh = append(fresh, f)
		}
	}
	return fresh, absorbed
}
