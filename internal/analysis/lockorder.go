package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// LockOrder detects inconsistent mutex acquisition order across the
// module — the deadlock class the sharded reconstruction accumulator
// (internal/reconstruct/parallel.go) must never regress into as the
// system grows multi-process. Two goroutines that each hold one of a
// pair of locks while waiting for the other deadlock permanently; the
// cure is a module-wide total order.
//
// The analyzer tracks, per function, which sync.Mutex/sync.RWMutex
// variables (struct fields and package-level vars, identified by their
// declared object) are held at each acquisition, in source order.
// Acquisitions made by callees count too: a call made while holding a
// lock contributes every lock the callee transitively acquires, via
// the call graph. When the pair (A then B) is observed anywhere in the
// module and (B then A) anywhere else, both acquisition sites are
// reported with their counterpart's position.
//
// Known imprecision: tracking is linear in source order (branches are
// not path-sensitive), and locks reached through interface calls or
// function values are invisible — the same unsoundness trade the call
// graph itself makes.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "sync.Mutex fields must be acquired in one module-wide order; " +
		"an A→B acquisition in one function and B→A in another can deadlock",
	Run: runLockOrder,
}

// lockAcq is one "B acquired while A held" observation.
type lockAcq struct {
	first, second types.Object // A (held), B (being acquired)
	pos           token.Pos    // acquisition (or call) site of B
	fn            types.Object // function observing the pair
	via           types.Object // non-nil when B is acquired inside a callee
}

func runLockOrder(pass *Pass) {
	g := pass.Facts.Graph

	// directLocks: locks a function acquires in its own body.
	direct := map[types.Object][]types.Object{}
	for _, n := range g.sortedNodes() {
		var acq []types.Object
		ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if obj, kind := mutexOp(n.Pkg.Info, call); obj != nil && (kind == "Lock" || kind == "RLock") {
					acq = append(acq, obj)
				}
			}
			return true
		})
		direct[n.Obj] = acq
	}

	// transitive: locks a function acquires anywhere in its static
	// call closure (memoized union over the graph).
	memo := map[types.Object]map[types.Object]bool{}
	var closure func(obj types.Object) map[types.Object]bool
	closure = func(obj types.Object) map[types.Object]bool {
		if v, ok := memo[obj]; ok {
			return v
		}
		set := map[types.Object]bool{}
		memo[obj] = set // cycle-safe: in-progress nodes contribute what is known so far
		for _, l := range direct[obj] {
			set[l] = true
		}
		for _, e := range g.Callees(obj) {
			for l := range closure(e.Callee) {
				set[l] = true
			}
		}
		return set
	}

	// Collect ordered pairs per function with a linear held-set scan.
	var pairs []lockAcq
	for _, n := range g.sortedNodes() {
		if isTestFile(pass.Fset, fileOf(n.Pkg, n.Decl.Pos())) {
			continue
		}
		pairs = append(pairs, functionLockPairs(n, closure)...)
	}

	// Cross the pair table: (A,B) conflicts with (B,A).
	type key struct{ a, b types.Object }
	byOrder := map[key][]lockAcq{}
	for _, p := range pairs {
		byOrder[key{p.first, p.second}] = append(byOrder[key{p.first, p.second}], p)
	}
	reported := map[token.Pos]bool{}
	// Deterministic iteration: walk pairs in collection order (source
	// order over sorted nodes).
	for _, p := range pairs {
		rev := byOrder[key{p.second, p.first}]
		if len(rev) == 0 || reported[p.pos] {
			continue
		}
		reported[p.pos] = true
		counter := rev[0]
		cpos := pass.Fset.Position(counter.pos)
		via := ""
		if p.via != nil {
			via = " (through " + FuncName(p.via) + ")"
		}
		pass.Reportf(p.pos,
			"%s acquires %s while holding %s%s, but %s acquires them in the opposite order at %s:%d; pick one module-wide lock order",
			FuncName(p.fn), lockName(p.second), lockName(p.first), via,
			FuncName(counter.fn), filepath.Base(cpos.Filename), cpos.Line)
	}
}

// functionLockPairs scans one function linearly, maintaining the set
// of locks held, and records every second acquisition — direct or via
// a callee's transitive closure — made while something is held.
func functionLockPairs(n *CallNode, closure func(types.Object) map[types.Object]bool) []lockAcq {
	info := n.Pkg.Info
	single := singleAssignFuncLocals(info, n.Decl)
	var held []types.Object
	var out []lockAcq
	unhold := func(obj types.Object) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i] == obj {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		if _, isDefer := m.(*ast.DeferStmt); isDefer {
			// A deferred unlock keeps the lock held to function end;
			// a deferred lock would be bizarre — skip the subtree.
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj, kind := mutexOp(info, call); obj != nil {
			switch kind {
			case "Lock", "RLock":
				for _, h := range held {
					if h != obj {
						out = append(out, lockAcq{first: h, second: obj, pos: call.Pos(), fn: n.Obj})
					}
				}
				held = append(held, obj)
			case "Unlock", "RUnlock":
				unhold(obj)
			}
			return true
		}
		if len(held) > 0 {
			if callee := resolveCallee(info, call.Fun, single); callee != nil {
				inner := closure(callee)
				// Deterministic order over the callee's lock set.
				objs := make([]types.Object, 0, len(inner))
				for l := range inner {
					objs = append(objs, l)
				}
				sort.Slice(objs, func(a, b int) bool { return objs[a].Pos() < objs[b].Pos() })
				for _, l := range objs {
					for _, h := range held {
						if h != l {
							out = append(out, lockAcq{first: h, second: l, pos: call.Pos(), fn: n.Obj, via: callee})
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// mutexOp matches calls of the form <lockable>.Lock/Unlock/RLock/
// RUnlock where <lockable> resolves to a declared sync.Mutex or
// sync.RWMutex variable (a struct field or a package-level var), and
// returns that variable's object and the operation name.
func mutexOp(info *types.Info, call *ast.CallExpr) (types.Object, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	kind := sel.Sel.Name
	switch kind {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, ""
	}
	obj := lockVarObject(info, sel.X)
	if obj == nil {
		return nil, ""
	}
	return obj, kind
}

// lockVarObject resolves the variable whose mutex is being operated
// on: `mu`, `s.mu`, `s.inner.mu` all resolve to the final declared
// var.
func lockVarObject(info *types.Info, e ast.Expr) types.Object {
	switch v := e.(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[v].(*types.Var); ok && isMutexType(obj.Type()) {
			return obj
		}
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[v.Sel].(*types.Var); ok && isMutexType(obj.Type()) {
			return obj
		}
	case *ast.ParenExpr:
		return lockVarObject(info, v.X)
	case *ast.UnaryExpr:
		if v.Op.String() == "&" {
			return lockVarObject(info, v.X)
		}
	}
	return nil
}

// isMutexType matches sync.Mutex and sync.RWMutex (possibly behind a
// pointer).
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// lockName renders a lock variable for reports.
func lockName(obj types.Object) string {
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}
