package analysis

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden-fixture harness: each tree under testdata/src/<name> is a
// tiny module loaded with an empty base path, so packages get import
// paths like "internal/core" — which is how a fixture opts into the
// path-scoped analyzers (Config matches by substring). A trailing
//
//	// want <analyzer> "<regexp>"
//
// comment marks the line as expecting exactly that finding; the
// harness fails on both missing and unexpected findings, so the
// negative halves of the fixtures (compliant code, out-of-scope
// packages) are asserted by their absence of want comments.

type wantSpec struct {
	file     string // relative to the fixture root
	line     int
	analyzer string
	re       *regexp.Regexp
	matched  bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+([a-z]+)\s+"([^"]+)"`)

// collectWants scans every fixture source file for want comments.
func collectWants(t *testing.T, root string) []*wantSpec {
	t.Helper()
	var wants []*wantSpec
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[2])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", rel, line, m[2], err)
			}
			wants = append(wants, &wantSpec{file: rel, line: line, analyzer: m[1], re: re})
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// runFixture loads and analyzes one fixture tree.
func runFixture(t *testing.T, name string) ([]Finding, string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root, "")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	return Run(loader.Fset, pkgs, All(), DefaultConfig()), root
}

// checkFixture asserts the exact want⇄finding correspondence.
func checkFixture(t *testing.T, name string) {
	t.Helper()
	findings, root := runFixture(t, name)
	wants := collectWants(t, root)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", name)
	}
	for _, f := range findings {
		rel, err := filepath.Rel(root, f.Pos.Filename)
		if err != nil {
			rel = f.Pos.Filename
		}
		covered := false
		for _, w := range wants {
			if w.file == rel && w.line == f.Pos.Line && w.analyzer == f.Analyzer && w.re.MatchString(f.Message) {
				w.matched = true
				covered = true
			}
		}
		if !covered {
			t.Errorf("unexpected finding %s:%d: [%s] %s", rel, f.Pos.Line, f.Analyzer, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing finding: %s:%d: [%s] matching %q", w.file, w.line, w.analyzer, w.re)
		}
	}
}

func TestSimclockFixture(t *testing.T)     { checkFixture(t, "simclock") }
func TestCycleClockFixture(t *testing.T)   { checkFixture(t, "cycleclock") }
func TestOracleGuardFixture(t *testing.T)  { checkFixture(t, "oracleguard") }
func TestMapOrderFixture(t *testing.T)     { checkFixture(t, "maporder") }
func TestHotpathAllocFixture(t *testing.T) { checkFixture(t, "hotpathalloc") }
func TestErrSinkFixture(t *testing.T)      { checkFixture(t, "errsink") }
func TestServeFixture(t *testing.T)        { checkFixture(t, "serve") }
func TestObsSpanFixture(t *testing.T)      { checkFixture(t, "obsspan") }
func TestObsEventFixture(t *testing.T)     { checkFixture(t, "obsevent") }
func TestCtxLeakFixture(t *testing.T)      { checkFixture(t, "ctxleak") }
func TestLockOrderFixture(t *testing.T)    { checkFixture(t, "lockorder") }

// TestSuppressionFixture asserts the waiver machinery directly: the
// reasoned //replint:allow swallows its finding, the reason-less one is
// itself reported and waives nothing, so exactly two findings survive —
// one malformed-suppression report and the unwaived simclock finding.
func TestSuppressionFixture(t *testing.T) {
	findings, _ := runFixture(t, "suppress")
	byAnalyzer := map[string]int{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer]++
	}
	if byAnalyzer["suppression"] != 1 {
		t.Errorf("want 1 malformed-suppression finding, got %d", byAnalyzer["suppression"])
	}
	if byAnalyzer["simclock"] != 1 {
		t.Errorf("want 1 surviving simclock finding (the malformed allow must not waive), got %d", byAnalyzer["simclock"])
	}
	if len(findings) != 2 {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Errorf("want exactly 2 findings, got %d", len(findings))
	}
}

// TestListOrder pins the suite's reporting order — sorted by analyzer
// name — so cmd/replint -list output stays stable and deterministic.
func TestListOrder(t *testing.T) {
	got := make([]string, 0, len(All()))
	for _, a := range All() {
		got = append(got, a.Name)
	}
	want := []string{"ctxleak", "errsink", "hotpathalloc", "lockorder", "maporder", "oracleguard", "simclock"}
	if len(got) != len(want) {
		t.Fatalf("suite = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("suite = %v, want %v", got, want)
		}
	}
}
