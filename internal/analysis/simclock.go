package analysis

import (
	"go/ast"
	"go/types"
)

// Simclock enforces the determinism contract of the simulated-cluster
// packages (PR 2): every duration in internal/parfft, internal/cluster
// and internal/core must come from the rank-ordered simulated clock
// (cluster.Node.Clock/Compute/Sleep), and every random draw from an
// explicitly seeded source — so wall-clock time and the global
// math/rand state, both of which vary run to run and with GOMAXPROCS,
// are banned outright.
var Simclock = &Analyzer{
	Name: "simclock",
	Doc: "wall-clock time (time.Now/Since/...) and global math/rand are banned in " +
		"simulated-clock packages; use cluster.Node clocks and seeded rand.New sources",
	Run: runSimclock,
}

// forbiddenTimeFuncs are the wall-clock entry points of package time.
// Pure constructors/parsers (time.Duration, time.Parse, ...) stay
// legal.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRandFuncs are the package-level math/rand functions that do
// not touch the global source.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 seeded constructors.
	"NewPCG": true, "NewChaCha8": true,
}

func runSimclock(pass *Pass) {
	if !pass.Config.matches(pass.Config.SimclockPaths, pass.Pkg.Path) {
		return
	}
	for _, file := range pass.Pkg.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil { // methods (e.g. rand.Rand.Float64) are fine
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if forbiddenTimeFuncs[fn.Name()] {
					pass.Reportf(id.Pos(), "time.%s reads the wall clock; simulated-clock packages must charge cluster.Node time instead", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !allowedRandFuncs[fn.Name()] {
					pass.Reportf(id.Pos(), "rand.%s draws from the global source; use an explicitly seeded rand.New(rand.NewSource(...))", fn.Name())
				}
			}
			return true
		})
	}
}
