package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Simclock enforces the determinism contract of the simulated-cluster
// packages (PR 2): every duration in internal/parfft, internal/cluster,
// internal/core, internal/serve and internal/cycle must come from the
// rank-ordered simulated clock (cluster.Node.Clock/Compute/Sleep), and
// every random draw from an explicitly seeded source — so wall-clock
// time and the global math/rand state, both of which vary run to run
// and with GOMAXPROCS, are banned outright.
//
// The ban is transitive: a scoped function that reaches time.Now or
// the global rand state through a helper in a package outside the
// scope — where the direct use is perfectly legal — is reported at
// its first call toward the sink, with the chain printed. One
// nondeterministic hop anywhere in the loop invalidates the
// bit-identical timing comparison the SP2 reproduction rests on.
var Simclock = &Analyzer{
	Name: "simclock",
	Doc: "wall-clock time (time.Now/Since/...) and global math/rand are banned in " +
		"simulated-clock packages, including transitively through helpers in other packages",
	Run: runSimclock,
}

// forbiddenTimeFuncs are the wall-clock entry points of package time.
// Pure constructors/parsers (time.Duration, time.Parse, ...) stay
// legal.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRandFuncs are the package-level math/rand functions that do
// not touch the global source.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 seeded constructors.
	"NewPCG": true, "NewChaCha8": true,
}

// clockSink is one direct wall-clock or global-rand use inside a
// function body.
type clockSink struct {
	pos  token.Pos
	desc string // e.g. "time.Now" or "rand.Float64"
}

// clockSinkAt classifies one identifier use as a forbidden source, or
// returns "" when it is clean.
func clockSinkAt(info *types.Info, id *ast.Ident) string {
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil { // methods (e.g. rand.Rand.Float64) are fine
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if forbiddenTimeFuncs[fn.Name()] {
			return "time." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		if !allowedRandFuncs[fn.Name()] {
			return "rand." + fn.Name()
		}
	}
	return ""
}

func runSimclock(pass *Pass) {
	inScope := func(pkg *Package) bool {
		return pass.Config.matches(pass.Config.SimclockPaths, pkg.Path)
	}

	// Direct uses inside scoped packages, reported at the identifier.
	for _, pkg := range pass.Pkgs {
		if !inScope(pkg) {
			continue
		}
		for _, file := range pkg.Files {
			if isTestFile(pass.Fset, file) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				switch desc := clockSinkAt(pkg.Info, id); {
				case desc == "":
				case desc[0] == 't':
					pass.Reportf(id.Pos(), "%s reads the wall clock; simulated-clock packages must charge cluster.Node time instead", desc)
				default:
					pass.Reportf(id.Pos(), "%s draws from the global source; use an explicitly seeded rand.New(rand.NewSource(...))", desc)
				}
				return true
			})
		}
	}

	// Transitive reach: scoped functions whose call graph hits a
	// direct sink inside an out-of-scope module package. Sinks inside
	// scoped packages are already direct findings above, so helpers in
	// the same scope act as barriers rather than duplicate reports.
	g := pass.Facts.Graph
	sinks := map[types.Object][]clockSink{}
	sinksOf := func(n *CallNode) []clockSink {
		if s, ok := sinks[n.Obj]; ok {
			return s
		}
		var s []clockSink
		ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if desc := clockSinkAt(n.Pkg.Info, id); desc != "" {
					s = append(s, clockSink{pos: id.Pos(), desc: desc})
				}
			}
			return true
		})
		sinks[n.Obj] = s
		return s
	}
	for _, root := range g.sortedNodes() {
		if !inScope(root.Pkg) {
			continue
		}
		if isTestFile(pass.Fset, fileOf(root.Pkg, root.Decl.Pos())) {
			continue
		}
		pred := g.reachableStopping(root.Obj, func(o types.Object) bool {
			n := g.Nodes[o]
			return n != nil && inScope(n.Pkg)
		})
		for _, n := range g.sortedNodes() {
			if _, reached := pred[n.Obj]; !reached || inScope(n.Pkg) {
				continue
			}
			s := sinksOf(n)
			if len(s) == 0 {
				continue
			}
			chain := Chain(pred, root.Obj, n.Obj)
			pass.Reportf(chain[0].Site,
				"%s reaches %s through %s (call chain %s); simulated-clock packages must charge cluster.Node time and use seeded sources only",
				FuncName(root.Obj), s[0].desc, FuncName(n.Obj), FormatChain(root.Obj, chain))
			break // one chain per scoped function keeps the signal readable
		}
	}
}
