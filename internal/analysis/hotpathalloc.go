package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// HotpathAlloc enforces the 0-alloc contract of the matching kernels:
// a function tagged //repro:hotpath sits inside the per-candidate or
// per-coefficient loops (the >99% of wall time the paper attributes to
// matching), where a single per-call allocation multiplies into
// millions of allocations per refinement pass. Within a tagged
// function the analyzer rejects
//
//   - append whose destination was not made with an explicit capacity
//     in the same function (growth ⇒ realloc+copy in the loop),
//   - composite literals that escape (&T{...}) and slice/map literals,
//   - numeric slices passed to interface parameters (the conversion
//     boxes the slice header on the heap — the classic fmt leak),
//   - function literals capturing loop variables (each iteration
//     allocates a closure),
//   - obs event emission (obs.Emit or EventLog.Emit): events narrate
//     job lifecycle edges at the level/job layer — inside a
//     per-candidate kernel the enabled path would build a record and
//     take the ring lock millions of times per pass.
//
// The contract is transitive: the same checks run over every function
// statically reachable from a tagged root through the module call
// graph, and an allocating callee is reported at the call site that
// pulls it into the hot path, with the full chain from the root
// printed. Amortized-growth scratch that a human has verified reaches
// a steady state is waived with //replint:allow hotpathalloc <reason>
// — at the construct inside a tagged function, or at the reported
// call site for a callee.
var HotpathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "//repro:hotpath functions — and every function they transitively call — " +
		"may not allocate per call: no growing append, no escaping composite literals, " +
		"no numeric-slice→interface conversions, no closures over loop variables, " +
		"no obs event emission",
	Run: runHotpathAlloc,
}

// allocSite is one allocating construct found inside a function body.
type allocSite struct {
	pos token.Pos
	msg string
}

func runHotpathAlloc(pass *Pass) {
	// Tagged functions: report each construct in place, exactly as the
	// intraprocedural suite always has.
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Files {
			if isTestFile(pass.Fset, file) {
				continue
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if _, hot := pass.Facts.Hotpath[pkg.Info.Defs[fd.Name]]; !hot {
					continue
				}
				for _, s := range allocSites(pkg.Info, fd) {
					pass.Reportf(s.pos, "%s", s.msg)
				}
			}
		}
	}

	// Transitive closure: walk the call graph from every tagged root
	// and report allocating callees at the call site that reaches
	// them. allocs caches per-function construct scans; reported
	// dedupes call sites shared by several roots.
	g := pass.Facts.Graph
	allocs := map[types.Object][]allocSite{}
	allocsOf := func(n *CallNode) []allocSite {
		if s, ok := allocs[n.Obj]; ok {
			return s
		}
		var s []allocSite
		if !isTestFile(pass.Fset, fileOf(n.Pkg, n.Decl.Pos())) {
			s = allocSites(n.Pkg.Info, n.Decl)
		}
		allocs[n.Obj] = s
		return s
	}
	reported := map[token.Pos]bool{}
	for _, root := range g.sortedNodes() {
		if _, hot := pass.Facts.Hotpath[root.Obj]; !hot {
			continue
		}
		// Nested tagged kernels are barriers: their own closure is
		// covered when they are the root, so chains stay attributed to
		// the nearest tagged ancestor.
		pred := g.reachableStopping(root.Obj, func(o types.Object) bool {
			_, tagged := pass.Facts.Hotpath[o]
			return tagged
		})
		// Visit reached functions in deterministic (position) order.
		for _, n := range g.sortedNodes() {
			edge, reached := pred[n.Obj]
			if !reached || n.Obj == root.Obj {
				continue
			}
			if _, tagged := pass.Facts.Hotpath[n.Obj]; tagged {
				continue // checked in place as its own root
			}
			sites := allocsOf(n)
			if len(sites) == 0 || reported[edge.Site] {
				continue
			}
			reported[edge.Site] = true
			chain := Chain(pred, root.Obj, n.Obj)
			first := pass.Fset.Position(sites[0].pos)
			pass.Reportf(edge.Site,
				"%s allocates per call inside a //repro:hotpath path (call chain %s): %s at %s:%d",
				FuncName(n.Obj), FormatChain(root.Obj, chain), sites[0].msg, filepath.Base(first.Filename), first.Line)
		}
	}
}

// fileOf returns the *ast.File of pkg containing pos.
func fileOf(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.Pos() <= pos && pos <= f.End() {
			return f
		}
	}
	return nil
}

// allocSites scans one function body for the per-call-allocation
// constructs the hot-path contract bans.
func allocSites(info *types.Info, fd *ast.FuncDecl) []allocSite {
	var out []allocSite
	report := func(pos token.Pos, msg string) {
		out = append(out, allocSite{pos: pos, msg: msg})
	}
	capped := cappedLocals(info, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if isBuiltinAppend(info, e) && len(e.Args) > 0 {
				if obj := sliceRootObject(info, e.Args[0]); obj == nil || !capped[obj] {
					report(e.Pos(), "append in hot path without a same-function make(..., cap): growth reallocates inside the kernel loop")
				}
			}
			if obj := calleeObject(info, e); obj != nil && obj.Name() == "Emit" &&
				obj.Pkg() != nil && obj.Pkg().Name() == "obs" {
				report(e.Pos(), "obs event emission in a hot path: events narrate job lifecycle edges, not kernel loops — lift the Emit to the level/job layer")
			}
			checkInterfaceArgs(info, e, report)
		case *ast.UnaryExpr:
			if e.Op.String() == "&" {
				if _, ok := e.X.(*ast.CompositeLit); ok {
					report(e.Pos(), "&composite literal escapes to the heap in a hot path")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[e]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(e.Pos(), "slice/map literal allocates in a hot path; hoist it to setup or scratch state")
				}
			}
		case *ast.ForStmt:
			checkLoopClosures(info, loopVarObjects(info, e.Init), e.Body, report)
		case *ast.RangeStmt:
			checkLoopClosures(info, rangeVarObjects(info, e), e.Body, report)
		}
		return true
	})
	return out
}

// cappedLocals collects the objects of local slices created by a
// three-argument make anywhere in the function — the only destinations
// append may grow into without tripping the analyzer.
func cappedLocals(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) != 3 {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
					if lid, ok := as.Lhs[i].(*ast.Ident); ok {
						if obj := info.Defs[lid]; obj != nil {
							out[obj] = true
						} else if obj := info.Uses[lid]; obj != nil {
							out[obj] = true
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// calleeObject resolves the object a call expression invokes: a plain
// identifier (package function) or the selected method/function of a
// selector expression.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return info.Uses[f]
	case *ast.SelectorExpr:
		return info.Uses[f.Sel]
	}
	return nil
}

// sliceRootObject resolves the identifier at the root of an append
// destination: plain `x` or resliced `x[:0]`.
func sliceRootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return info.Uses[v]
		case *ast.SliceExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// checkInterfaceArgs flags numeric slices converted to interface
// parameters (incl. variadic ...interface{}).
func checkInterfaceArgs(info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) {
	ftv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := ftv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		atv, ok := info.Types[arg]
		if !ok {
			continue
		}
		if sl, ok := atv.Type.Underlying().(*types.Slice); ok && isFloatOrComplex(sl.Elem()) {
			report(arg.Pos(), "numeric slice passed to interface parameter boxes the slice header on the heap in a hot path")
		}
	}
}

func loopVarObjects(info *types.Info, init ast.Stmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	if as, ok := init.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

func rangeVarObjects(info *types.Info, rs *ast.RangeStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// checkLoopClosures reports function literals inside a loop body that
// capture that loop's variables.
func checkLoopClosures(info *types.Info, loopVars map[types.Object]bool, body *ast.BlockStmt, report func(token.Pos, string)) {
	if len(loopVars) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		captures := false
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && loopVars[info.Uses[id]] {
				captures = true
			}
			return !captures
		})
		if captures {
			report(fl.Pos(), "closure over loop variable allocates every iteration in a hot path")
		}
		return false // nested literals are covered by the outer report
	})
}
