package analysis

import (
	"go/ast"
	"go/types"
)

// HotpathAlloc enforces the 0-alloc contract of the matching kernels:
// a function tagged //repro:hotpath sits inside the per-candidate or
// per-coefficient loops (the >99% of wall time the paper attributes to
// matching), where a single per-call allocation multiplies into
// millions of allocations per refinement pass. Within a tagged
// function the analyzer rejects
//
//   - append whose destination was not made with an explicit capacity
//     in the same function (growth ⇒ realloc+copy in the loop),
//   - composite literals that escape (&T{...}) and slice/map literals,
//   - numeric slices passed to interface parameters (the conversion
//     boxes the slice header on the heap — the classic fmt leak),
//   - function literals capturing loop variables (each iteration
//     allocates a closure).
//
// Amortized-growth scratch that a human has verified reaches a steady
// state is waived with //replint:allow hotpathalloc <reason>.
var HotpathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "//repro:hotpath functions may not allocate per call: no growing append, " +
		"no escaping composite literals, no numeric-slice→interface conversions, " +
		"no closures over loop variables",
	Run: runHotpathAlloc,
}

func runHotpathAlloc(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, hot := pass.Facts.Hotpath[info.Defs[fd.Name]]; !hot {
				continue
			}
			checkHotpathFunc(pass, fd)
		}
	}
}

func checkHotpathFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	capped := cappedLocals(info, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if isBuiltinAppend(info, e) && len(e.Args) > 0 {
				if obj := sliceRootObject(info, e.Args[0]); obj == nil || !capped[obj] {
					pass.Reportf(e.Pos(), "append in hot path without a same-function make(..., cap): growth reallocates inside the kernel loop")
				}
			}
			checkInterfaceArgs(pass, e)
		case *ast.UnaryExpr:
			if e.Op.String() == "&" {
				if _, ok := e.X.(*ast.CompositeLit); ok {
					pass.Reportf(e.Pos(), "&composite literal escapes to the heap in a hot path")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[e]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(e.Pos(), "slice/map literal allocates in a hot path; hoist it to setup or scratch state")
				}
			}
		case *ast.ForStmt:
			checkLoopClosures(pass, loopVarObjects(info, e.Init), e.Body)
		case *ast.RangeStmt:
			checkLoopClosures(pass, rangeVarObjects(info, e), e.Body)
		}
		return true
	})
}

// cappedLocals collects the objects of local slices created by a
// three-argument make anywhere in the function — the only destinations
// append may grow into without tripping the analyzer.
func cappedLocals(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) != 3 {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
					if lid, ok := as.Lhs[i].(*ast.Ident); ok {
						if obj := info.Defs[lid]; obj != nil {
							out[obj] = true
						} else if obj := info.Uses[lid]; obj != nil {
							out[obj] = true
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// sliceRootObject resolves the identifier at the root of an append
// destination: plain `x` or resliced `x[:0]`.
func sliceRootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return info.Uses[v]
		case *ast.SliceExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// checkInterfaceArgs flags numeric slices converted to interface
// parameters (incl. variadic ...interface{}).
func checkInterfaceArgs(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	ftv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := ftv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		atv, ok := info.Types[arg]
		if !ok {
			continue
		}
		if sl, ok := atv.Type.Underlying().(*types.Slice); ok && isFloatOrComplex(sl.Elem()) {
			pass.Reportf(arg.Pos(), "numeric slice passed to interface parameter boxes the slice header on the heap in a hot path")
		}
	}
}

func loopVarObjects(info *types.Info, init ast.Stmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	if as, ok := init.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

func rangeVarObjects(info *types.Info, rs *ast.RangeStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// checkLoopClosures reports function literals inside a loop body that
// capture that loop's variables.
func checkLoopClosures(pass *Pass, loopVars map[types.Object]bool, body *ast.BlockStmt) {
	if len(loopVars) == 0 {
		return
	}
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		captures := false
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && loopVars[info.Uses[id]] {
				captures = true
			}
			return !captures
		})
		if captures {
			pass.Reportf(fl.Pos(), "closure over loop variable allocates every iteration in a hot path")
		}
		return false // nested literals are covered by the outer report
	})
}
