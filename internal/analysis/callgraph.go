package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CallGraph is the whole-module static call graph the interprocedural
// analyzers propagate contracts along. Nodes are the declared
// functions and methods of the loaded packages; edges are resolved
// from three statically unambiguous call forms:
//
//   - direct calls of a declared function (f(...), pkg.F(...)),
//   - method calls through a concrete (non-interface) receiver type
//     (x.M(...), including promoted methods),
//   - calls through a function-valued local with exactly one
//     assignment, where that assignment's right-hand side is itself a
//     declared function, a method value, or a method expression
//     (h := helper; ...; h(...)).
//
// Known unsoundness (documented, deliberate): calls through interface
// methods, through function-typed parameters or struct fields, and
// through locals assigned more than once produce no edge — replint
// favours precise, explainable chains over a sound-but-noisy
// over-approximation. Function literals get no node of their own:
// their bodies lie inside a declared function, so their calls are
// attributed to that enclosing declaration, which is exactly the
// attribution a call-chain report wants.
type CallGraph struct {
	// Nodes maps the *types.Func object of every declared function or
	// method in the module to its node.
	Nodes map[types.Object]*CallNode
}

// CallNode is one declared function or method.
type CallNode struct {
	Obj  types.Object
	Decl *ast.FuncDecl
	Pkg  *Package
	// Out holds the outgoing edges in source order.
	Out []CallEdge
}

// CallEdge is one resolved static call.
type CallEdge struct {
	Caller types.Object
	Callee types.Object
	// Site is the position of the call expression.
	Site token.Pos
}

// BuildCallGraph resolves the static call edges of every loaded
// package.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: map[types.Object]*CallNode{}}
	// First pass: one node per declared function, so edge resolution
	// can distinguish module targets from external ones.
	for _, p := range pkgs {
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj := p.Info.Defs[fd.Name]; obj != nil {
					g.Nodes[obj] = &CallNode{Obj: obj, Decl: fd, Pkg: p}
				}
			}
		}
	}
	for _, n := range g.Nodes {
		g.resolveEdges(n)
	}
	return g
}

// Callees returns the outgoing edges of fn (nil when fn has no node).
func (g *CallGraph) Callees(fn types.Object) []CallEdge {
	if n := g.Nodes[fn]; n != nil {
		return n.Out
	}
	return nil
}

// resolveEdges fills n.Out from the calls in n's body.
func (g *CallGraph) resolveEdges(n *CallNode) {
	info := n.Pkg.Info
	single := singleAssignFuncLocals(info, n.Decl)
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		target := resolveCallee(info, call.Fun, single)
		if target == nil {
			return true
		}
		if _, inModule := g.Nodes[target]; !inModule {
			return true
		}
		n.Out = append(n.Out, CallEdge{Caller: n.Obj, Callee: target, Site: call.Pos()})
		return true
	})
	// Source order is already how Inspect visits, but make it explicit:
	// deterministic edge order is what keeps chain output stable.
	sort.SliceStable(n.Out, func(a, b int) bool { return n.Out[a].Site < n.Out[b].Site })
}

// resolveCallee maps a call's Fun expression to the types.Object of a
// declared function, or nil when the target is not statically
// unambiguous.
func resolveCallee(info *types.Info, fun ast.Expr, single map[types.Object]types.Object) types.Object {
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Func:
			return obj
		case *types.Var:
			// A function-valued local: only single-assignment locals
			// resolve, and only to a declared target.
			return single[obj]
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			// Method call or method value through a selection: concrete
			// receivers resolve to the declared method, interface
			// receivers resolve to nothing (no static callee).
			if isInterfaceRecv(sel) {
				return nil
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified identifier (pkg.F) or method expression (T.M):
		// both resolve through Uses.
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.ParenExpr:
		return resolveCallee(info, f.X, single)
	}
	return nil
}

// isInterfaceRecv reports whether a selection dispatches dynamically
// through an interface.
func isInterfaceRecv(sel *types.Selection) bool {
	t := sel.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	_, iface := t.Underlying().(*types.Interface)
	return iface
}

// singleAssignFuncLocals finds the function-typed locals of fd that
// are assigned exactly once, mapping each local's object to the
// declared function it holds. Locals assigned twice — or whose single
// right-hand side is not a declared function, method value, or method
// expression — resolve to nothing.
func singleAssignFuncLocals(info *types.Info, fd *ast.FuncDecl) map[types.Object]types.Object {
	assigns := map[types.Object]int{}
	target := map[types.Object]types.Object{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		if _, isFunc := v.Type().Underlying().(*types.Signature); !isFunc {
			return
		}
		assigns[v]++
		if rhs != nil {
			if t := resolveFuncValue(info, rhs); t != nil {
				target[v] = t
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				var rhs ast.Expr
				if i < len(s.Rhs) && len(s.Lhs) == len(s.Rhs) {
					rhs = s.Rhs[i]
				}
				record(lhs, rhs)
			}
		case *ast.GenDecl:
			for _, spec := range s.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					record(name, rhs)
				}
			}
		}
		return true
	})
	out := map[types.Object]types.Object{}
	for v, t := range target {
		if assigns[v] == 1 {
			out[v] = t
		}
	}
	return out
}

// resolveFuncValue maps an expression used as a function value to the
// declared function it denotes: a function identifier, a method value
// (x.M with concrete x), or a method expression (T.M).
func resolveFuncValue(info *types.Info, e ast.Expr) types.Object {
	switch v := e.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[v].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[v]; ok {
			if isInterfaceRecv(sel) {
				return nil
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[v.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.ParenExpr:
		return resolveFuncValue(info, v.X)
	}
	return nil
}

// ReachableFrom runs a breadth-first search from root and returns the
// predecessor edge of every function reachable through at least one
// call, keyed by callee object. Root itself is present only if it is
// reachable through a cycle. Edge order within each function is source
// order, so the traversal — and therefore every reported chain — is
// deterministic.
func (g *CallGraph) ReachableFrom(root types.Object) map[types.Object]CallEdge {
	return g.reachableStopping(root, nil)
}

// reachableStopping is ReachableFrom with a barrier: functions for
// which stop returns true are recorded when reached but their own
// callees are not explored. Analyzers use it to keep chains from
// tunnelling through nodes that are already roots (or findings) in
// their own right.
func (g *CallGraph) reachableStopping(root types.Object, stop func(types.Object) bool) map[types.Object]CallEdge {
	pred := map[types.Object]CallEdge{}
	queue := []types.Object{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.Callees(cur) {
			if _, seen := pred[e.Callee]; seen {
				continue
			}
			pred[e.Callee] = e
			if stop == nil || !stop(e.Callee) {
				queue = append(queue, e.Callee)
			}
		}
	}
	return pred
}

// Chain reconstructs the call path root → ... → target from a
// predecessor map produced by ReachableFrom(root). It returns nil when
// target was not reached.
func Chain(pred map[types.Object]CallEdge, root, target types.Object) []CallEdge {
	if _, ok := pred[target]; !ok {
		return nil
	}
	var rev []CallEdge
	for cur := target; cur != root; {
		e, ok := pred[cur]
		if !ok {
			return nil
		}
		rev = append(rev, e)
		cur = e.Caller
		if len(rev) > len(pred)+1 {
			return nil // defensive: corrupt predecessor map
		}
	}
	out := make([]CallEdge, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// FormatChain renders "Root → A → B" for a chain returned by Chain.
func FormatChain(root types.Object, chain []CallEdge) string {
	var b strings.Builder
	b.WriteString(FuncName(root))
	for _, e := range chain {
		b.WriteString(" → ")
		b.WriteString(FuncName(e.Callee))
	}
	return b.String()
}

// FuncName renders a compact, receiver-qualified function name:
// "pkg.Func" or "pkg.Type.Method".
func FuncName(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok {
		return obj.Name()
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			return fmt.Sprintf("%s%s.%s", pkg, named.Obj().Name(), fn.Name())
		}
	}
	return pkg + fn.Name()
}

// sortedNodes returns the graph's nodes ordered by declaration
// position — the iteration order every interprocedural analyzer uses
// so findings come out deterministically.
func (g *CallGraph) sortedNodes() []*CallNode {
	out := make([]*CallNode, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Decl.Pos() < out[b].Decl.Pos() })
	return out
}
