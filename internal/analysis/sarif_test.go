package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// sarifSubsetSchema is the structural subset of the SARIF 2.1.0 JSON
// schema (sarif-schema-2.1.0.json) that governs everything replint
// emits: required properties, the version enum, the result level
// enum, and the startLine/startColumn ≥ 1 constraints. The validator
// below interprets it with standard JSON Schema semantics for the
// keywords used (type, required, properties, items, enum, minimum),
// so a log that passes here satisfies the corresponding constraints
// of the full schema.
const sarifSubsetSchema = `{
  "type": "object",
  "required": ["version", "runs"],
  "properties": {
    "$schema": {"type": "string"},
    "version": {"type": "string", "enum": ["2.1.0"]},
    "runs": {
      "type": "array",
      "items": {
        "type": "object",
        "required": ["tool"],
        "properties": {
          "tool": {
            "type": "object",
            "required": ["driver"],
            "properties": {
              "driver": {
                "type": "object",
                "required": ["name"],
                "properties": {
                  "name": {"type": "string"},
                  "rules": {
                    "type": "array",
                    "items": {
                      "type": "object",
                      "required": ["id"],
                      "properties": {
                        "id": {"type": "string"},
                        "shortDescription": {
                          "type": "object",
                          "required": ["text"],
                          "properties": {"text": {"type": "string"}}
                        }
                      }
                    }
                  }
                }
              }
            }
          },
          "results": {
            "type": "array",
            "items": {
              "type": "object",
              "required": ["message"],
              "properties": {
                "ruleId": {"type": "string"},
                "level": {"type": "string", "enum": ["none", "note", "warning", "error"]},
                "message": {"type": "object", "required": ["text"], "properties": {"text": {"type": "string"}}},
                "locations": {
                  "type": "array",
                  "items": {
                    "type": "object",
                    "properties": {
                      "physicalLocation": {
                        "type": "object",
                        "properties": {
                          "artifactLocation": {
                            "type": "object",
                            "properties": {"uri": {"type": "string"}}
                          },
                          "region": {
                            "type": "object",
                            "properties": {
                              "startLine": {"type": "integer", "minimum": 1},
                              "startColumn": {"type": "integer", "minimum": 1}
                            }
                          }
                        }
                      }
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
}`

// validateSchema checks value against a decoded JSON-Schema subset
// (type, required, properties, items, enum, minimum), returning every
// violation with its JSON path.
func validateSchema(schema map[string]interface{}, value interface{}, path string) []string {
	var errs []string
	fail := func(format string, args ...interface{}) {
		errs = append(errs, path+": "+fmt.Sprintf(format, args...))
	}
	if want, ok := schema["type"].(string); ok {
		switch want {
		case "object":
			if _, ok := value.(map[string]interface{}); !ok {
				fail("not an object: %T", value)
				return errs
			}
		case "array":
			if _, ok := value.([]interface{}); !ok {
				fail("not an array: %T", value)
				return errs
			}
		case "string":
			if _, ok := value.(string); !ok {
				fail("not a string: %T", value)
				return errs
			}
		case "integer":
			f, ok := value.(float64)
			if !ok || f != float64(int64(f)) {
				fail("not an integer: %v", value)
				return errs
			}
		}
	}
	if enum, ok := schema["enum"].([]interface{}); ok {
		found := false
		for _, e := range enum {
			if e == value {
				found = true
			}
		}
		if !found {
			fail("%v not in enum %v", value, enum)
		}
	}
	if min, ok := schema["minimum"].(float64); ok {
		if f, ok := value.(float64); ok && f < min {
			fail("%v below minimum %v", f, min)
		}
	}
	if obj, ok := value.(map[string]interface{}); ok {
		if req, ok := schema["required"].([]interface{}); ok {
			for _, r := range req {
				if _, present := obj[r.(string)]; !present {
					fail("missing required property %q", r)
				}
			}
		}
		if props, ok := schema["properties"].(map[string]interface{}); ok {
			for name, sub := range props {
				if v, present := obj[name]; present {
					errs = append(errs, validateSchema(sub.(map[string]interface{}), v, path+"."+name)...)
				}
			}
		}
	}
	if arr, ok := value.([]interface{}); ok {
		if items, ok := schema["items"].(map[string]interface{}); ok {
			for i, v := range arr {
				errs = append(errs, validateSchema(items, v, fmt.Sprintf("%s[%d]", path, i))...)
			}
		}
	}
	return errs
}

func sarifTestFindings() []Finding {
	return []Finding{
		{Pos: token.Position{Filename: "/repo/internal/core/refine.go", Line: 42, Column: 7},
			Analyzer: "hotpathalloc", Message: "append in hot path"},
		{Pos: token.Position{Filename: "/repo/internal/serve/manager.go", Line: 9, Column: 1},
			Analyzer: "ctxleak", Message: "goroutine has no cancellation path"},
		// A diagnostic with no position: startLine must clamp to 1.
		{Pos: token.Position{}, Analyzer: "load", Message: "package x skipped (analysis is partial): parse error"},
	}
}

// TestSARIFSchema validates the emitted log against the SARIF 2.1.0
// schema subset and the cross-reference rule GitHub enforces: every
// result's ruleId resolves in the driver's rules table.
func TestSARIFSchema(t *testing.T) {
	data, err := SARIF(sarifTestFindings(), All(), "/repo")
	if err != nil {
		t.Fatal(err)
	}
	var schema map[string]interface{}
	if err := json.Unmarshal([]byte(sarifSubsetSchema), &schema); err != nil {
		t.Fatalf("embedded schema is invalid JSON: %v", err)
	}
	var log interface{}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF output is invalid JSON: %v", err)
	}
	for _, e := range validateSchema(schema, log, "$") {
		t.Errorf("schema violation: %s", e)
	}

	root := log.(map[string]interface{})
	run := root["runs"].([]interface{})[0].(map[string]interface{})
	driver := run["tool"].(map[string]interface{})["driver"].(map[string]interface{})
	ruleIDs := map[string]bool{}
	var order []string
	for _, r := range driver["rules"].([]interface{}) {
		id := r.(map[string]interface{})["id"].(string)
		ruleIDs[id] = true
		order = append(order, id)
	}
	if !sort.StringsAreSorted(order) {
		t.Errorf("rules not sorted by id: %v", order)
	}
	for i, res := range run["results"].([]interface{}) {
		rm := res.(map[string]interface{})
		if id := rm["ruleId"].(string); !ruleIDs[id] {
			t.Errorf("results[%d].ruleId %q not in driver.rules", i, id)
		}
		loc := rm["locations"].([]interface{})[0].(map[string]interface{})
		uri := loc["physicalLocation"].(map[string]interface{})["artifactLocation"].(map[string]interface{})["uri"].(string)
		if strings.HasPrefix(uri, "/") || strings.Contains(uri, "\\") {
			t.Errorf("results[%d] uri %q is not repo-relative with forward slashes", i, uri)
		}
	}
}
