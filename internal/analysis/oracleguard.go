package analysis

import (
	"go/ast"
)

// OracleGuard keeps the reference implementations ("oracles") out of
// production code. PR 1 and PR 2 replaced the complex-FFT and
// scalar-sampling paths with fused/real-input equivalents but kept the
// originals — NewVolumeDFTComplex, ImageDFTComplex, VolumeDFT.Sample —
// as the ground truth that equivalence tests compare against. An
// oracle that leaks back into a production call chain silently
// forfeits the speedup and, worse, stops being an independent check.
// A declaration opts in with a //repro:oracle directive; references
// are then legal only from _test.go files or from other oracle-tagged
// declarations.
var OracleGuard = &Analyzer{
	Name: "oracleguard",
	Doc: "declarations tagged //repro:oracle are test-only reference implementations; " +
		"production code must call the fused/real-input equivalents",
	Run: runOracleGuard,
}

func runOracleGuard(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Pkg.Info.Uses[id]
			if obj == nil || !pass.Facts.Oracle[obj] {
				return true
			}
			if fd := enclosingFuncDecl(file, id.Pos()); fd != nil {
				if _, tagged := pass.Facts.OracleDecls[fd]; tagged {
					return true // oracles may build on each other
				}
			}
			pass.Reportf(id.Pos(), "%s is a //repro:oracle reference implementation; only _test.go files and other oracles may use it", obj.Name())
			return true
		})
	}
}
