package analysis

import (
	"go/ast"
	"go/types"
)

// OracleGuard keeps the reference implementations ("oracles") out of
// production code. PR 1 and PR 2 replaced the complex-FFT and
// scalar-sampling paths with fused/real-input equivalents but kept the
// originals — NewVolumeDFTComplex, ImageDFTComplex, VolumeDFT.Sample —
// as the ground truth that equivalence tests compare against. An
// oracle that leaks back into a production call chain silently
// forfeits the speedup and, worse, stops being an independent check.
// A declaration opts in with a //repro:oracle directive; references
// are then legal only from _test.go files or from other oracle-tagged
// declarations.
//
// The guard is transitive: a production function from which an oracle
// is reachable through the module call graph — even when every direct
// reference along the way carries its own reasoned waiver — is
// reported with the chain printed, at the call site of its first hop.
// Reaching an oracle through a deliberately waived helper is a
// decision each caller must re-state, not inherit.
var OracleGuard = &Analyzer{
	Name: "oracleguard",
	Doc: "declarations tagged //repro:oracle are test-only reference implementations; " +
		"production code must not reach them, directly or through the call graph",
	Run: runOracleGuard,
}

func runOracleGuard(pass *Pass) {
	// Direct references, reported at the identifier as always.
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Files {
			if isTestFile(pass.Fset, file) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pkg.Info.Uses[id]
				if obj == nil || !pass.Facts.Oracle[obj] {
					return true
				}
				if fd := enclosingFuncDecl(file, id.Pos()); fd != nil {
					if _, tagged := pass.Facts.OracleDecls[fd]; tagged {
						return true // oracles may build on each other
					}
				}
				pass.Reportf(id.Pos(), "%s is a //repro:oracle reference implementation; only _test.go files and other oracles may use it", obj.Name())
				return true
			})
		}
	}

	// Transitive reachability: production functions whose call graph
	// reaches an oracle in two or more hops. One-hop reaches are the
	// direct references above; re-reporting them here would double
	// every finding and defeat site-level suppression.
	g := pass.Facts.Graph
	for _, node := range g.sortedNodes() {
		if pass.Facts.Oracle[node.Obj] {
			continue
		}
		if isTestFile(pass.Fset, fileOf(node.Pkg, node.Decl.Pos())) {
			continue
		}
		// Oracles are barriers: a chain that tunnels through one
		// oracle to another adds nothing over the finding (or waiver)
		// at the first oracle reference.
		pred := g.reachableStopping(node.Obj, func(o types.Object) bool { return pass.Facts.Oracle[o] })
		best := oracleChain(pass, pred, node.Obj)
		if len(best) < 2 {
			continue
		}
		pass.Reportf(best[0].Site,
			"%s transitively reaches //repro:oracle %s (call chain %s); only _test.go files and other oracles may",
			FuncName(node.Obj), FuncName(best[len(best)-1].Callee), FormatChain(node.Obj, best))
	}
}

// oracleChain returns the shortest chain from root to any reachable
// oracle (BFS predecessor maps encode shortest paths), preferring the
// earliest-declared oracle on ties so output is deterministic.
func oracleChain(pass *Pass, pred map[types.Object]CallEdge, root types.Object) []CallEdge {
	var best []CallEdge
	for _, n := range pass.Facts.Graph.sortedNodes() {
		if !pass.Facts.Oracle[n.Obj] {
			continue
		}
		if _, reached := pred[n.Obj]; !reached {
			continue
		}
		c := Chain(pred, root, n.Obj)
		if c == nil {
			continue
		}
		if best == nil || len(c) < len(best) {
			best = c
		}
	}
	return best
}
