// Package analysis is the project lint suite behind cmd/replint: a
// stdlib-only static-analysis driver (go/parser + go/types) that
// mechanically enforces the invariants the reproduction's correctness
// rests on but no compiler checks — simulated-clock determinism,
// oracle/production separation, reproducible accumulation order,
// allocation-free hot kernels, and goroutine/lock hygiene.
//
// Since PR 8 the suite is interprocedural: a whole-module call graph
// (see callgraph.go) resolves static call edges, and the contract
// analyzers propagate their properties along it — a hot path that
// calls an allocating helper, or a production path that reaches an
// oracle through one level of indirection, is a finding with the call
// chain printed.
//
// Registration tags (written as directive comments on declarations):
//
//	//repro:oracle   — reference implementation kept only for
//	                   equivalence tests; production code must not
//	                   call it, directly or transitively
//	                   (analyzer: oracleguard).
//	//repro:hotpath  — allocation-free kernel; hotpathalloc rejects
//	                   constructs that allocate per call, in the
//	                   tagged function and in everything it reaches.
//
// Suppressions: any finding can be waived with a comment on the same
// line or the line above, carrying a written reason:
//
//	//replint:allow <analyzer> <reason...>
//
// A suppression without a reason is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Run is invoked once per
// module with a Pass holding every loaded package, so analyzers are
// free to combine per-file syntax checks with whole-module call-graph
// queries.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Finding is one reported violation.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Config scopes the package-specific analyzers. Path matching is by
// substring, so fixture trees can opt in by mirroring the production
// directory names.
type Config struct {
	// SimclockPaths are the packages where wall-clock time and global
	// randomness are banned (the simulated clock and seeded RNGs are
	// the only admissible sources).
	SimclockPaths []string
	// NumericPaths are the packages whose floating-point accumulation
	// order must be reproducible, where map iteration may not feed
	// sums, appends or channel sends.
	NumericPaths []string
	// ConcurrencyPaths are the packages whose goroutines must be
	// cancellable or joined (analyzer: ctxleak) — the long-lived
	// worker fan-outs of the job service and the cluster/pool/parfft
	// execution layers.
	ConcurrencyPaths []string
}

// DefaultConfig returns the production scoping of the suite.
func DefaultConfig() *Config {
	return &Config{
		SimclockPaths: []string{"internal/parfft", "internal/cluster", "internal/core", "internal/serve", "internal/cycle"},
		NumericPaths: []string{
			"internal/fft", "internal/fourier", "internal/core", "internal/parfft",
			"internal/cluster", "internal/reconstruct", "internal/align", "internal/fsc",
			"internal/brick", "internal/volume", "internal/geom", "internal/baseline",
			"internal/symmetry", "internal/workload", "internal/cycle",
		},
		ConcurrencyPaths: []string{"internal/serve", "internal/pool", "internal/cluster", "internal/parfft"},
	}
}

func (c *Config) matches(paths []string, pkgPath string) bool {
	for _, p := range paths {
		if strings.Contains(pkgPath, p) {
			return true
		}
	}
	return false
}

// Facts is the whole-program state shared by all analyzers: which
// objects are registered oracles, which functions are declared hot
// paths, and the module call graph the interprocedural analyzers
// propagate those properties along.
type Facts struct {
	// Oracle maps a declared object to true when its declaration
	// carries //repro:oracle.
	Oracle map[types.Object]bool
	// Hotpath holds the *ast.FuncDecl of every //repro:hotpath
	// function, keyed by its object.
	Hotpath map[types.Object]*ast.FuncDecl
	// OracleDecls maps each oracle-tagged FuncDecl back to its object,
	// so oracleguard can permit oracle→oracle references.
	OracleDecls map[*ast.FuncDecl]types.Object
	// Graph is the whole-module static call graph.
	Graph *CallGraph
}

// CollectFacts scans every package for registration tags and builds
// the call graph.
func CollectFacts(pkgs []*Package) *Facts {
	f := &Facts{
		Oracle:      map[types.Object]bool{},
		Hotpath:     map[types.Object]*ast.FuncDecl{},
		OracleDecls: map[*ast.FuncDecl]types.Object{},
	}
	for _, p := range pkgs {
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				obj := p.Info.Defs[fd.Name]
				if obj == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					switch {
					case strings.HasPrefix(c.Text, "//repro:oracle"):
						f.Oracle[obj] = true
						f.OracleDecls[fd] = obj
					case strings.HasPrefix(c.Text, "//repro:hotpath"):
						f.Hotpath[obj] = fd
					}
				}
			}
		}
	}
	f.Graph = BuildCallGraph(pkgs)
	return f
}

// Pass is the per-analyzer invocation context: one call per module,
// with every loaded package visible.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package
	Facts    *Facts
	Config   *Config
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// registry is the full suite; All sorts it by name so registration
// order (spread over several files) never leaks into -list output or
// run order.
var registry = []*Analyzer{
	Simclock, OracleGuard, MapOrder, HotpathAlloc, ErrSink, CtxLeak, LockOrder,
}

// All returns the suite sorted by analyzer name — deterministic
// regardless of which file registered what.
func All() []*Analyzer {
	out := make([]*Analyzer, len(registry))
	copy(out, registry)
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// suppression is one parsed //replint:allow comment.
type suppression struct {
	line     int
	analyzer string
	reason   string
	pos      token.Pos
	used     bool
}

const allowPrefix = "//replint:allow"

// collectSuppressions parses the allow-comments of one file.
func collectSuppressions(fset *token.FileSet, file *ast.File) []*suppression {
	var out []*suppression
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
			name, reason, _ := strings.Cut(rest, " ")
			out = append(out, &suppression{
				line:     fset.Position(c.Pos()).Line,
				analyzer: name,
				reason:   strings.TrimSpace(reason),
				pos:      c.Pos(),
			})
		}
	}
	return out
}

// Run executes every analyzer over the module and returns the
// surviving findings sorted by position. Suppressed findings are
// dropped; malformed suppressions (no analyzer name or no reason) are
// reported as findings of the pseudo-analyzer "suppression".
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, cfg *Config) []Finding {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	facts := CollectFacts(pkgs)

	var raw []Finding
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Pkgs: pkgs, Facts: facts, Config: cfg, findings: &raw}
		a.Run(pass)
	}

	// Index suppressions by file and line.
	type fileLine struct {
		file string
		line int
	}
	sups := map[fileLine][]*suppression{}
	var malformed []Finding
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, s := range collectSuppressions(fset, file) {
				pos := fset.Position(s.pos)
				if s.analyzer == "" || s.reason == "" {
					malformed = append(malformed, Finding{
						Pos:      pos,
						Analyzer: "suppression",
						Message:  "malformed //replint:allow: want \"//replint:allow <analyzer> <reason>\"",
					})
					continue
				}
				key := fileLine{pos.Filename, s.line}
				sups[key] = append(sups[key], s)
			}
		}
	}

	var out []Finding
	for _, f := range raw {
		suppressed := false
		// A suppression covers findings on its own line (trailing
		// comment) and on the following line (comment above).
		for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
			for _, s := range sups[fileLine{f.Pos.Filename, line}] {
				if s.analyzer == f.Analyzer {
					s.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	out = append(out, malformed...)
	SortFindings(out)
	return out
}

// SortFindings orders findings by file, line, column, analyzer, then
// message — the canonical order every replint output mode uses.
func SortFindings(out []Finding) {
	sort.Slice(out, func(a, b int) bool {
		fa, fb := out[a], out[b]
		if fa.Pos.Filename != fb.Pos.Filename {
			return fa.Pos.Filename < fb.Pos.Filename
		}
		if fa.Pos.Line != fb.Pos.Line {
			return fa.Pos.Line < fb.Pos.Line
		}
		if fa.Pos.Column != fb.Pos.Column {
			return fa.Pos.Column < fb.Pos.Column
		}
		if fa.Analyzer != fb.Analyzer {
			return fa.Analyzer < fb.Analyzer
		}
		return fa.Message < fb.Message
	})
}

// isTestFile reports whether the file's name ends in _test.go. The
// loader never parses test files, but fixture trees may name files to
// simulate them, and analyzers use this to honour the exemption.
func isTestFile(fset *token.FileSet, file *ast.File) bool {
	return strings.HasSuffix(fset.Position(file.Pos()).Filename, "_test.go")
}

// enclosingFuncDecl returns the top-level FuncDecl containing pos, if
// any.
func enclosingFuncDecl(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
