package analysis

import (
	"path/filepath"
	"testing"
)

// loadGraphFixture builds the call graph of the callgraph fixture
// tree.
func loadGraphFixture(t *testing.T) *CallGraph {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src", "callgraph"))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root, "")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if diags := loader.Diagnostics(); len(diags) > 0 {
		t.Fatalf("fixture did not load cleanly: %v", diags)
	}
	return BuildCallGraph(pkgs)
}

// TestCallGraphResolution pins the edge-resolution rules: which call
// forms produce a static edge and which are deliberately left
// unresolved.
func TestCallGraphResolution(t *testing.T) {
	g := loadGraphFixture(t)
	edges := map[string]bool{}
	for _, n := range g.sortedNodes() {
		for _, e := range n.Out {
			edges[FuncName(e.Caller)+" -> "+FuncName(e.Callee)] = true
		}
	}
	cases := []struct {
		name string
		edge string
		want bool
	}{
		{"direct call", "graphfix.Direct -> graphfix.helper", true},
		{"method call, concrete receiver", "graphfix.MethodCall -> graphfix.Counter.Inc", true},
		{"method value via single-assign local", "graphfix.MethodValue -> graphfix.Counter.Inc", true},
		{"method expression via single-assign local", "graphfix.MethodExpr -> graphfix.Counter.Get", true},
		{"function stored once then called", "graphfix.StoredFunc -> graphfix.helper", true},
		{"self-recursion", "graphfix.Loop -> graphfix.Loop", true},
		{"reassigned local resolves to nothing (first target)", "graphfix.Reassigned -> graphfix.helper", false},
		{"reassigned local resolves to nothing (second target)", "graphfix.Reassigned -> graphfix.other", false},
		{"interface dispatch has no edge", "graphfix.Iface -> graphfix.Counter.Inc", false},
	}
	for _, c := range cases {
		if edges[c.edge] != c.want {
			t.Errorf("%s: edge %q present=%v, want %v\nall edges: %v", c.name, c.edge, edges[c.edge], c.want, keys(edges))
		}
	}
}

// TestCallGraphReachabilityAndChain asserts BFS reachability and the
// chain reconstruction the analyzers print.
func TestCallGraphReachabilityAndChain(t *testing.T) {
	g := loadGraphFixture(t)
	byName := map[string]*CallNode{}
	for _, n := range g.sortedNodes() {
		byName[FuncName(n.Obj)] = n
	}
	direct, helper := byName["graphfix.Direct"], byName["graphfix.helper"]
	if direct == nil || helper == nil {
		t.Fatal("fixture nodes missing")
	}
	pred := g.ReachableFrom(direct.Obj)
	if _, ok := pred[helper.Obj]; !ok {
		t.Fatal("helper not reachable from Direct")
	}
	chain := Chain(pred, direct.Obj, helper.Obj)
	if len(chain) != 1 {
		t.Fatalf("chain length = %d, want 1", len(chain))
	}
	if got := FormatChain(direct.Obj, chain); got != "graphfix.Direct → graphfix.helper" {
		t.Fatalf("FormatChain = %q", got)
	}
	// Iface must reach nothing: interface dispatch is not an edge.
	if pred := g.ReachableFrom(byName["graphfix.Iface"].Obj); len(pred) != 0 {
		t.Fatalf("Iface reaches %d nodes, want 0", len(pred))
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
