package analysis

import (
	"bytes"
	"go/token"
	"testing"
)

// TestBaselineRoundTrip pins the write→parse→apply cycle: recorded
// findings are absorbed, anything new keeps gating, and regeneration
// is byte-stable.
func TestBaselineRoundTrip(t *testing.T) {
	root := "/repo"
	old := []Finding{
		{Pos: token.Position{Filename: "/repo/a/a.go", Line: 3, Column: 2}, Analyzer: "simclock", Message: "time.Now reads the wall clock"},
		{Pos: token.Position{Filename: "/repo/b/b.go", Line: 8, Column: 1}, Analyzer: "errsink", Message: "error discarded"},
	}
	data := WriteBaseline(old, root)
	if again := WriteBaseline(old, root); !bytes.Equal(data, again) {
		t.Fatal("baseline regeneration is not byte-stable")
	}
	bl := ParseBaseline(data)
	if len(bl) != 2 {
		t.Fatalf("parsed %d baseline lines, want 2 (header must be ignored)", len(bl))
	}

	fresh := Finding{Pos: token.Position{Filename: "/repo/c/c.go", Line: 1, Column: 1}, Analyzer: "ctxleak", Message: "goroutine has no cancellation path"}
	gating, absorbed := ApplyBaseline(append(old[:2:2], fresh), bl, root)
	if len(absorbed) != 2 {
		t.Errorf("absorbed %d findings, want 2", len(absorbed))
	}
	if len(gating) != 1 || gating[0].Analyzer != "ctxleak" {
		t.Errorf("gating = %v, want just the fresh ctxleak finding", gating)
	}
}

// TestBaselineEmpty pins the shape of the checked-in file: an empty
// tree writes a header-only baseline that absorbs nothing.
func TestBaselineEmpty(t *testing.T) {
	data := WriteBaseline(nil, "/repo")
	if bl := ParseBaseline(data); len(bl) != 0 {
		t.Fatalf("empty baseline parsed to %d entries", len(bl))
	}
	f := Finding{Pos: token.Position{Filename: "/repo/a.go", Line: 1, Column: 1}, Analyzer: "simclock", Message: "m"}
	gating, absorbed := ApplyBaseline([]Finding{f}, ParseBaseline(data), "/repo")
	if len(gating) != 1 || len(absorbed) != 0 {
		t.Fatalf("empty baseline absorbed a finding: gating=%d absorbed=%d", len(gating), len(absorbed))
	}
}
