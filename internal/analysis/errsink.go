package analysis

import (
	"go/ast"
	"go/types"
)

// ErrSink bans silently discarded error returns outside _test.go. In a
// pipeline whose outputs are binary maps and orientation files, a
// swallowed write or close error means a truncated dataset that the
// next refinement cycle happily consumes — the failure surfaces as
// "wrong structure", not as an I/O error. Both sink forms are flagged:
// a call used as a bare statement and an error result assigned to the
// blank identifier. Deliberate discards must say why via
// //replint:allow errsink <reason>.
//
// Pragmatic exclusions (these cannot fail meaningfully): fmt.Print*
// to standard output, fmt.Fprint* whose writer is os.Stdout/os.Stderr,
// and the never-failing in-memory writers bytes.Buffer and
// strings.Builder. Deferred calls are also skipped — `defer f.Close()`
// on read paths is accepted idiom; write paths should check Close
// explicitly (see internal/micrograph/io.go for the pattern).
var ErrSink = &Analyzer{
	Name: "errsink",
	Doc: "error returns may not be silently discarded outside _test.go; " +
		"check them, or suppress with a written reason",
	Run: runErrSink,
}

func runErrSink(pass *Pass) {
	for _, pkg := range pass.Pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			if isTestFile(pass.Fset, file) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.DeferStmt, *ast.GoStmt:
					return false
				case *ast.ExprStmt:
					call, ok := s.X.(*ast.CallExpr)
					if !ok {
						return true
					}
					if errsinkExcluded(info, call) {
						return true
					}
					if errorResultCount(info, call) > 0 {
						pass.Reportf(call.Pos(), "%s returns an error that is discarded", callName(call))
					}
				case *ast.AssignStmt:
					checkBlankErrAssign(pass, info, s)
				}
				return true
			})
		}
	}
}

// checkBlankErrAssign flags `_`-assignments of error results, for both
// `_ = f()` and `n, _ := f()` shapes.
func checkBlankErrAssign(pass *Pass, info *types.Info, as *ast.AssignStmt) {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// Multi-value call: align blanks with tuple positions.
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || errsinkExcluded(info, call) {
			return
		}
		tuple, ok := info.Types[call].Type.(*types.Tuple)
		if !ok || tuple.Len() != len(as.Lhs) {
			return
		}
		for i, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" && isErrorType(tuple.At(i).Type()) {
				pass.Reportf(id.Pos(), "error result of %s assigned to _", callName(call))
			}
		}
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" || i >= len(as.Rhs) {
			continue
		}
		call, ok := as.Rhs[i].(*ast.CallExpr)
		if !ok || errsinkExcluded(info, call) {
			continue
		}
		if tv, ok := info.Types[call]; ok && isErrorType(tv.Type) {
			pass.Reportf(id.Pos(), "error result of %s assigned to _", callName(call))
		}
	}
}

// errorResultCount returns how many results of the call are of type
// error.
func errorResultCount(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call]
	if !ok {
		return 0
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		n := 0
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				n++
			}
		}
		return n
	default:
		if isErrorType(t) {
			return 1
		}
	}
	return 0
}

var errorIface = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorIface)
}

// errsinkExcluded reports calls whose error is conventionally
// meaningless.
func errsinkExcluded(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			return len(call.Args) > 0 && isStdStream(info, call.Args[0])
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok && named.Obj().Pkg() != nil {
			full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			if full == "bytes.Buffer" || full == "strings.Builder" {
				return true
			}
		}
	}
	return false
}

// isStdStream matches the expressions os.Stdout and os.Stderr.
func isStdStream(info *types.Info, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return false
	}
	return obj.Name() == "Stdout" || obj.Name() == "Stderr"
}

// callName renders a compact name for the called function.
func callName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}
