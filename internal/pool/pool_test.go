package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(100, 0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(100, 0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(3, 8); got != 3 {
		t.Errorf("Workers(3, 8) = %d, want 3 (clamp to items)", got)
	}
	if got := Workers(0, 0); got != 1 {
		t.Errorf("Workers(0, 0) = %d, want 1 (floor)", got)
	}
	if got := Workers(5, 2); got != 2 {
		t.Errorf("Workers(5, 2) = %d, want 2", got)
	}
}

// TestRunIndexedExactlyOnce: every index in [0, n) is visited exactly
// once, for serial and parallel worker counts.
func TestRunIndexedExactlyOnce(t *testing.T) {
	const n = 1000
	for _, workers := range []int{1, 2, 7, 64} {
		counts := make([]atomic.Int32, n)
		RunIndexed(n, workers, func(_, i int) {
			counts[i].Add(1)
		})
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

// TestRunIndexedWorkerIDs: worker ids stay in [0, workers), so they can
// safely index per-worker scratch slices.
func TestRunIndexedWorkerIDs(t *testing.T) {
	const n, workers = 500, 4
	var bad atomic.Int32
	RunIndexed(n, workers, func(w, _ int) {
		if w < 0 || w >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatalf("%d calls saw an out-of-range worker id", bad.Load())
	}
}

func TestRunIndexedEmpty(t *testing.T) {
	RunIndexed(0, 4, func(_, _ int) {
		t.Fatal("fn called for empty range")
	})
}
