// Package pool provides the one concurrency primitive shared by every
// compute-bound fan-out in the system: a bounded worker pool handing
// out indices through an atomic counter. It sits below both the
// orientation-refinement batch paths (internal/core) and the parallel
// slab DFT (internal/parfft), which cannot import each other.
//
// Determinism contract: fn(worker, i) is called exactly once for every
// i in [0, n), and callers obtain input-order results by writing only
// slot i of a preallocated slice. Nothing about scheduling leaks into
// the output; the worker id exists solely to bind per-worker scratch
// without synchronization.
package pool

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Pool occupancy metrics. runs counts pool launches, items the total
// indices dispatched, and items_per_worker the per-worker share of
// each run — a flat histogram means the atomic hand-out balanced the
// load, a skewed one means stragglers dominated.
var (
	poolRuns           = obs.NewCounter("pool.runs")
	poolItems          = obs.NewCounter("pool.items")
	poolWorkers        = obs.NewCounter("pool.workers")
	poolItemsPerWorker = obs.NewHistogram("pool.items_per_worker", 24)
)

// Workers resolves a requested worker count for n independent work
// items: non-positive requests select GOMAXPROCS, and the pool never
// exceeds the number of items.
func Workers(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// RunIndexed executes fn(worker, i) for every i in [0, n) on a bounded
// pool of the given number of workers. Work is handed out through an
// atomic counter, so load balances dynamically, and each index is
// processed exactly once. The worker id (0 ≤ worker < workers) lets
// callers bind per-worker scratch without synchronization. RunIndexed
// returns after all items complete.
func RunIndexed(n, workers int, fn func(worker, i int)) {
	RunIndexedLabeled("", n, workers, fn)
}

// RunIndexedLabeled is RunIndexed with a stage name. When
// instrumentation is enabled the stage is attached to the worker
// goroutines as a runtime/pprof label (key "stage"), so CPU profiles
// attribute samples to pipeline stages, and occupancy metrics are
// recorded. Scheduling and the exactly-once contract are identical to
// RunIndexed; an empty stage skips the pprof label but still counts.
func RunIndexedLabeled(stage string, n, workers int, fn func(worker, i int)) {
	workers = Workers(n, workers)
	observe := obs.Enabled()
	if observe {
		poolRuns.Inc()
		poolItems.Add(int64(n))
		poolWorkers.Add(int64(workers))
	}
	if workers == 1 {
		body := func() {
			for i := 0; i < n; i++ {
				fn(0, i)
			}
		}
		if observe && stage != "" {
			pprof.Do(context.Background(), pprof.Labels("stage", stage), func(context.Context) { body() })
		} else {
			body()
		}
		if observe {
			poolItemsPerWorker.Observe(int64(n))
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			body := func() {
				done := int64(0)
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						break
					}
					fn(worker, i)
					done++
				}
				if observe {
					poolItemsPerWorker.Observe(done)
				}
			}
			if observe && stage != "" {
				// Labels set inside pprof.Do are inherited by any
				// goroutine fn itself spawns.
				pprof.Do(context.Background(), pprof.Labels("stage", stage), func(context.Context) { body() })
			} else {
				body()
			}
		}(w)
	}
	wg.Wait()
}
