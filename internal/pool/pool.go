// Package pool provides the one concurrency primitive shared by every
// compute-bound fan-out in the system: a bounded worker pool handing
// out indices through an atomic counter. It sits below both the
// orientation-refinement batch paths (internal/core) and the parallel
// slab DFT (internal/parfft), which cannot import each other.
//
// Determinism contract: fn(worker, i) is called exactly once for every
// i in [0, n), and callers obtain input-order results by writing only
// slot i of a preallocated slice. Nothing about scheduling leaks into
// the output; the worker id exists solely to bind per-worker scratch
// without synchronization.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count for n independent work
// items: non-positive requests select GOMAXPROCS, and the pool never
// exceeds the number of items.
func Workers(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// RunIndexed executes fn(worker, i) for every i in [0, n) on a bounded
// pool of the given number of workers. Work is handed out through an
// atomic counter, so load balances dynamically, and each index is
// processed exactly once. The worker id (0 ≤ worker < workers) lets
// callers bind per-worker scratch without synchronization. RunIndexed
// returns after all items complete.
func RunIndexed(n, workers int, fn func(worker, i int)) {
	workers = Workers(n, workers)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}
