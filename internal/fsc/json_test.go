package fsc

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestCurveJSONRoundTrip pins the exactness contract: a curve with
// adversarial float64 values (subnormals, values a shortest-repr
// printer must carry 17 digits for, exact-binary fractions) survives
// marshal→unmarshal bit for bit.
func TestCurveJSONRoundTrip(t *testing.T) {
	c := &Curve{
		PixelA: 2.8000000000000003, // not representable at fewer digits
		Points: []Point{
			{Shell: 1, FreqPerA: 0.1, ResolutionA: 10, CC: 0.9999999999999999},
			{Shell: 2, FreqPerA: math.Nextafter(0.2, 1), ResolutionA: 1 / math.Nextafter(0.2, 1), CC: -0.3},
			{Shell: 3, FreqPerA: 0.25, ResolutionA: 4, CC: 5e-324}, // smallest subnormal
		},
	}
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var got Curve
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, c) {
		t.Fatalf("round trip drifted:\n got %+v\nwant %+v", got, *c)
	}
	// A second generation must be byte-identical (stable wire shape).
	data2, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("re-marshal not byte-identical:\n%s\n%s", data, data2)
	}
}

// TestCurveJSONShape pins the wire schema — the cycle journal and any
// external consumer parse these exact keys.
func TestCurveJSONShape(t *testing.T) {
	c := &Curve{PixelA: 2, Points: []Point{{Shell: 1, FreqPerA: 0.5, ResolutionA: 2, CC: 0.75}}}
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"pixel_a":2,"points":[{"shell":1,"freq_per_a":0.5,"resolution_a":2,"cc":0.75}]}`
	if string(data) != want {
		t.Fatalf("wire shape = %s, want %s", data, want)
	}
}

// TestCurveJSONEmpty distinguishes the two empty shapes: nil points
// round-trip as null, a present-but-empty slice as [].
func TestCurveJSONEmpty(t *testing.T) {
	for _, c := range []*Curve{{PixelA: 1}, {PixelA: 1, Points: []Point{}}} {
		data, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		var got Curve
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(&got, c) {
			t.Fatalf("empty round trip drifted: got %#v want %#v", got, *c)
		}
	}
}

// TestCurveJSONRejects exercises the validation: unusable pixel sizes
// and malformed documents are errors, not silent zero values.
func TestCurveJSONRejects(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"zero pixel with shells", `{"pixel_a":0,"points":[{"shell":1,"freq_per_a":0.5,"resolution_a":2,"cc":0.5}]}`},
		{"negative pixel with shells", `{"pixel_a":-2,"points":[{"shell":1,"freq_per_a":0.5,"resolution_a":2,"cc":0.5}]}`},
		{"not an object", `[1,2,3]`},
	}
	for _, tc := range cases {
		var c Curve
		if err := json.Unmarshal([]byte(tc.doc), &c); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		} else if !strings.Contains(err.Error(), "fsc:") {
			t.Errorf("%s: error %q not from fsc", tc.name, err)
		}
	}
}
