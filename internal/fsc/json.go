package fsc

import (
	"encoding/json"
	"fmt"
)

// JSON serialization of FSC curves. The wire shape is pinned here —
// snake_case keys, shells in ascending order — rather than left to the
// default struct reflection, so the cycle journal and any external
// tooling see one stable schema. encoding/json renders float64 with
// the shortest representation that round-trips exactly, so a curve
// written and re-read compares bit-identically; the cycle driver's
// resume path depends on that exactness.

// curveJSON is the wire shape of a Curve.
type curveJSON struct {
	PixelA float64     `json:"pixel_a"`
	Points []pointJSON `json:"points"`
}

// pointJSON is the wire shape of one shell.
type pointJSON struct {
	Shell       int     `json:"shell"`
	FreqPerA    float64 `json:"freq_per_a"`
	ResolutionA float64 `json:"resolution_a"`
	CC          float64 `json:"cc"`
}

// MarshalJSON encodes the curve in the pinned wire shape.
func (c Curve) MarshalJSON() ([]byte, error) {
	out := curveJSON{PixelA: c.PixelA}
	if c.Points != nil {
		out.Points = make([]pointJSON, len(c.Points))
		for i, p := range c.Points {
			out.Points[i] = pointJSON{Shell: p.Shell, FreqPerA: p.FreqPerA, ResolutionA: p.ResolutionA, CC: p.CC}
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the wire shape written by MarshalJSON,
// rejecting curves whose labelling is unusable (non-positive pixel
// size with shells present).
func (c *Curve) UnmarshalJSON(data []byte) error {
	var in curveJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("fsc: decoding curve: %w", err)
	}
	if len(in.Points) > 0 && in.PixelA <= 0 {
		return fmt.Errorf("fsc: decoding curve: non-positive pixel size %g", in.PixelA)
	}
	c.PixelA = in.PixelA
	c.Points = nil
	if in.Points != nil {
		c.Points = make([]Point, len(in.Points))
		for i, p := range in.Points {
			c.Points[i] = Point{Shell: p.Shell, FreqPerA: p.FreqPerA, ResolutionA: p.ResolutionA, CC: p.CC}
		}
	}
	return nil
}
