package fsc

import (
	"math"
	"testing"
)

// mkCurve builds a curve with the given per-shell correlations at
// pixelA=2 — enough structure for ResolutionAt's edge cases.
func mkCurve(ccs ...float64) *Curve {
	c := &Curve{PixelA: 2}
	l := 2 * (len(ccs) + 1) // any l large enough for the shells
	for i, cc := range ccs {
		s := i + 1
		freq := float64(s) / (float64(l) * c.PixelA)
		c.Points = append(c.Points, Point{Shell: s, FreqPerA: freq, ResolutionA: 1 / freq, CC: cc})
	}
	return c
}

func TestResolutionAtNoShells(t *testing.T) {
	c := &Curve{PixelA: 2}
	if res := c.ResolutionAt(0.5); !math.IsInf(res, 1) {
		t.Fatalf("empty curve: got %g, want +Inf", res)
	}
}

// TestResolutionAtFirstShell pins the boundary where the curve is
// already below threshold at the coarsest shell: no interpolation is
// possible, so the first shell's own resolution is returned.
func TestResolutionAtFirstShell(t *testing.T) {
	c := mkCurve(0.3, 0.2, 0.1)
	if res := c.ResolutionAt(0.5); res != c.Points[0].ResolutionA {
		t.Fatalf("first-shell crossing: got %g, want %g", res, c.Points[0].ResolutionA)
	}
}

// TestResolutionAtNonMonotonic pins first-crossing-wins on a curve
// that dips below 0.5, recovers, and dips again — the reported
// resolution must come from the first dip, not the deeper later one.
func TestResolutionAtNonMonotonic(t *testing.T) {
	c := mkCurve(0.9, 0.4, 0.8, 0.1)
	res := c.ResolutionAt(0.5)
	// The crossing is interpolated between shells 1 (0.9) and 2 (0.4),
	// so it must be coarser than shell 2's resolution and finer than
	// shell 1's.
	if !(res < c.Points[0].ResolutionA && res > c.Points[1].ResolutionA) {
		t.Fatalf("non-monotonic: got %g, want within (%g, %g)", res, c.Points[1].ResolutionA, c.Points[0].ResolutionA)
	}
	// And it must be the 1→2 crossing, not the 3→4 one: interpolate by
	// hand to confirm.
	pr, p := c.Points[0], c.Points[1]
	tt := (pr.CC - 0.5) / (pr.CC - p.CC)
	want := 1 / (pr.FreqPerA + tt*(p.FreqPerA-pr.FreqPerA))
	if res != want {
		t.Fatalf("non-monotonic: got %g, want first crossing %g", res, want)
	}
}

func TestResolutionAtNeverCrosses(t *testing.T) {
	c := mkCurve(0.99, 0.95, 0.9)
	if res := c.ResolutionAt(0.5); res != c.Points[len(c.Points)-1].ResolutionA {
		t.Fatalf("never crosses: got %g, want finest sampled %g", res, c.Points[len(c.Points)-1].ResolutionA)
	}
}

// TestPlateauObserve walks the stopping rule through the scenarios the
// cycle driver hits: first observation, clear improvement, sub-Eps
// stall, regression, and the stop condition after Window stalls.
func TestPlateauObserve(t *testing.T) {
	p := &Plateau{Eps: 0.1, Window: 2}

	steps := []struct {
		resA           float64
		improved, stop bool
		count          int
	}{
		{10.0, true, false, 0},  // first observation always improves
		{9.0, true, false, 0},   // 1.0 Å gain ≥ Eps
		{8.95, false, false, 1}, // 0.05 Å < Eps: stall (but BestA tightens)
		{8.94, false, true, 2},  // second consecutive stall → stop
	}
	for i, s := range steps {
		improved, stop := p.Observe(s.resA)
		if improved != s.improved || stop != s.stop || p.Count != s.count {
			t.Fatalf("step %d (%g Å): improved=%v stop=%v count=%d, want %v %v %d",
				i, s.resA, improved, stop, p.Count, s.improved, s.stop, s.count)
		}
	}
	// Sub-Eps gains tightened the baseline each time.
	if p.BestA != 8.94 {
		t.Fatalf("BestA = %g, want 8.94", p.BestA)
	}
}

// TestPlateauRegression: a cycle that makes the map worse must not
// reset the stall counter.
func TestPlateauRegression(t *testing.T) {
	p := &Plateau{Eps: 0.1, Window: 3}
	p.Observe(10)
	if improved, _ := p.Observe(11); improved {
		t.Fatal("regression counted as improvement")
	}
	if p.BestA != 10 {
		t.Fatalf("BestA moved to %g on regression", p.BestA)
	}
	if improved, _ := p.Observe(9.5); !improved {
		t.Fatal("0.5 Å gain over best not counted as improvement")
	}
	if p.Count != 0 {
		t.Fatalf("Count = %d after improvement, want 0", p.Count)
	}
}

// TestPlateauDisabled: Window ≤ 0 never stops, however long the stall.
func TestPlateauDisabled(t *testing.T) {
	p := &Plateau{Eps: 0.1, Window: 0}
	p.Observe(10)
	for i := 0; i < 50; i++ {
		if _, stop := p.Observe(10); stop {
			t.Fatalf("disabled plateau stopped at stall %d", i)
		}
	}
}

// TestPlateauReplay pins the resume property the journal depends on:
// folding the same resolution sequence through a fresh Plateau yields
// identical state.
func TestPlateauReplay(t *testing.T) {
	seq := []float64{12, 10.5, 10.4, 10.38, 9.0, 8.99, 8.985}
	a := &Plateau{Eps: 0.05, Window: 3}
	for _, r := range seq {
		a.Observe(r)
	}
	b := &Plateau{Eps: 0.05, Window: 3}
	for _, r := range seq {
		b.Observe(r)
	}
	if *a != *b {
		t.Fatalf("replay diverged: %+v vs %+v", *a, *b)
	}
}
