// Package fsc implements the resolution-assessment procedure of the
// paper's Fig. 4: split the views into two halves, reconstruct a map
// from each, and compute the correlation between the two maps shell by
// shell in Fourier space (the Fourier Shell Correlation). The
// resolution of the full map is conservatively read off where the
// correlation falls through 0.5.
package fsc

import (
	"fmt"
	"math"

	"repro/internal/fft"
	"repro/internal/pool"
	"repro/internal/volume"
)

// Point is one shell of an FSC curve.
type Point struct {
	// Shell is the integer frequency radius (frequency-index units).
	Shell int
	// FreqPerA is the spatial frequency of the shell in 1/Å.
	FreqPerA float64
	// ResolutionA is the shell's resolution in Å (1/FreqPerA).
	ResolutionA float64
	// CC is the correlation coefficient of the two half-maps over the
	// shell.
	CC float64
}

// Curve is a full FSC curve with the pixel size it was computed at.
type Curve struct {
	PixelA float64
	Points []Point
}

// shellTerms is the number of running sums kept per shell: the cross
// term and the two energies.
const shellTerms = 3

// accumulatePlane folds one x-plane of the two spectra into the
// per-plane partial sums at dst (length shellTerms·(nShells+1), laid
// out [shell][cross, ea, eb]). Both the serial and the parallel curve
// computations call this and then merge planes in ascending x, so the
// floating-point grouping — and therefore the curve, bit for bit — is
// identical on every path and worker count.
func accumulatePlane(dst []float64, fa, fb []complex128, x, l, nShells int) {
	fx := float64(fft.FreqIndex(x, l))
	for y := 0; y < l; y++ {
		fy := float64(fft.FreqIndex(y, l))
		row := (x*l + y) * l
		for z := 0; z < l; z++ {
			fz := float64(fft.FreqIndex(z, l))
			r := math.Sqrt(fx*fx + fy*fy + fz*fz)
			shell := int(math.Round(r))
			if shell < 1 || shell > nShells {
				continue
			}
			va := fa[row+z]
			vb := fb[row+z]
			t := shell * shellTerms
			dst[t] += real(va)*real(vb) + imag(va)*imag(vb)
			dst[t+1] += real(va)*real(va) + imag(va)*imag(va)
			dst[t+2] += real(vb)*real(vb) + imag(vb)*imag(vb)
		}
	}
}

// Compute computes the Fourier shell correlation between two equally
// sized maps. pixelA is the sampling in Å/pixel, used to label shells
// with physical resolutions. Shell 0 (DC) is omitted.
func Compute(a, b *volume.Grid, pixelA float64) (*Curve, error) {
	return ComputeParallel(a, b, pixelA, 1)
}

// ComputeParallel is Compute on a bounded worker pool: the two forward
// 3-D FFTs run concurrently and the shell accumulation fans out over
// x-planes, each plane summed independently and the partials merged in
// ascending x. The curve is bit-identical to Compute for every worker
// count (workers ≤ 0 selects GOMAXPROCS).
func ComputeParallel(a, b *volume.Grid, pixelA float64, workers int) (*Curve, error) {
	if a.L != b.L {
		return nil, fmt.Errorf("fsc: map sizes differ: %d vs %d", a.L, b.L)
	}
	if pixelA <= 0 {
		return nil, fmt.Errorf("fsc: pixel size must be positive")
	}
	l := a.L
	fa := a.Complex()
	fb := b.Complex()
	spectra := [2][]complex128{fa.Data, fb.Data}
	pool.RunIndexedLabeled("fsc.fft", len(spectra), workers, func(_, i int) {
		fft.NewPlan3D(l, l, l).Forward(spectra[i])
	})

	nShells := l / 2
	stride := shellTerms * (nShells + 1)
	partial := make([]float64, l*stride)
	pool.RunIndexedLabeled("fsc.shells", l, workers, func(_, x int) {
		accumulatePlane(partial[x*stride:(x+1)*stride], fa.Data, fb.Data, x, l, nShells)
	})
	cross := make([]float64, nShells+1)
	ea := make([]float64, nShells+1)
	eb := make([]float64, nShells+1)
	for x := 0; x < l; x++ {
		base := x * stride
		for s := 1; s <= nShells; s++ {
			t := base + s*shellTerms
			cross[s] += partial[t]
			ea[s] += partial[t+1]
			eb[s] += partial[t+2]
		}
	}
	c := &Curve{PixelA: pixelA}
	for s := 1; s <= nShells; s++ {
		den := math.Sqrt(ea[s] * eb[s])
		cc := 0.0
		if den > 0 {
			cc = cross[s] / den
		}
		freq := float64(s) / (float64(l) * pixelA)
		c.Points = append(c.Points, Point{
			Shell:       s,
			FreqPerA:    freq,
			ResolutionA: 1 / freq,
			CC:          cc,
		})
	}
	return c, nil
}

// ResolutionAt returns the resolution in Å at which the curve first
// falls below the threshold (the paper uses 0.5: "a correlation
// coefficient higher than 0.5 gives a conservative estimate of the
// final resolution"). The crossing is linearly interpolated in
// frequency. If the curve never falls below the threshold, the finest
// sampled resolution is returned.
func (c *Curve) ResolutionAt(threshold float64) float64 {
	if len(c.Points) == 0 {
		return math.Inf(1)
	}
	prev := c.Points[0]
	if prev.CC < threshold {
		return prev.ResolutionA
	}
	for _, p := range c.Points[1:] {
		if p.CC < threshold {
			// Interpolate the crossing frequency between prev and p.
			t := (prev.CC - threshold) / (prev.CC - p.CC)
			freq := prev.FreqPerA + t*(p.FreqPerA-prev.FreqPerA)
			return 1 / freq
		}
		prev = p
	}
	return c.Points[len(c.Points)-1].ResolutionA
}

// MeanCC returns the average correlation over all shells — a scalar
// summary used to compare curves ("the new orientation refinement
// method gives higher correlation coefficients").
func (c *Curve) MeanCC() float64 {
	if len(c.Points) == 0 {
		return 0
	}
	var s float64
	for _, p := range c.Points {
		s += p.CC
	}
	return s / float64(len(c.Points))
}

// Dominates reports whether curve c has CC ≥ other's CC on at least
// frac of the shared shells — the visual "one curve lies above the
// other" of Figs. 5 and 6 made precise.
func (c *Curve) Dominates(other *Curve, frac float64) bool {
	n := len(c.Points)
	if len(other.Points) < n {
		n = len(other.Points)
	}
	if n == 0 {
		return false
	}
	wins := 0
	for i := 0; i < n; i++ {
		if c.Points[i].CC >= other.Points[i].CC {
			wins++
		}
	}
	return float64(wins) >= frac*float64(n)
}

// SSNR converts a correlation value to the spectral signal-to-noise
// ratio of the *combined* (full-dataset) map via the standard relation
// SSNR = 2·FSC/(1−FSC), clamping pathological values. FSC ≥ 1 maps to
// +Inf; FSC ≤ 0 maps to 0.
func SSNR(fscValue float64) float64 {
	if fscValue >= 1 {
		return math.Inf(1)
	}
	if fscValue <= 0 {
		return 0
	}
	return 2 * fscValue / (1 - fscValue)
}

// SSNRCurve maps every shell of the curve through SSNR.
func (c *Curve) SSNRCurve() []float64 {
	out := make([]float64, len(c.Points))
	for i, p := range c.Points {
		out[i] = SSNR(p.CC)
	}
	return out
}
