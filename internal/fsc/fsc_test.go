package fsc

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/phantom"
	"repro/internal/volume"
)

func TestIdenticalMapsGiveUnitFSC(t *testing.T) {
	m := phantom.SindbisLike(24)
	c, err := Compute(m, m, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Points {
		if math.Abs(p.CC-1) > 1e-9 {
			t.Fatalf("shell %d: CC %g, want 1", p.Shell, p.CC)
		}
	}
	if res := c.ResolutionAt(0.5); res != c.Points[len(c.Points)-1].ResolutionA {
		t.Fatalf("identical maps: resolution %g, want finest shell", res)
	}
}

func TestIndependentNoiseGivesLowFSC(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	l := 24
	a, b := volume.NewGrid(l), volume.NewGrid(l)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
		b.Data[i] = r.NormFloat64()
	}
	c, err := Compute(a, b, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if mean := c.MeanCC(); math.Abs(mean) > 0.1 {
		t.Fatalf("independent noise mean FSC %g", mean)
	}
}

func TestFSCSymmetric(t *testing.T) {
	m := phantom.SindbisLike(16)
	n := phantom.ReoLike(16)
	ab, _ := Compute(m, n, 2.0)
	ba, _ := Compute(n, m, 2.0)
	for i := range ab.Points {
		if math.Abs(ab.Points[i].CC-ba.Points[i].CC) > 1e-12 {
			t.Fatal("FSC not symmetric in its arguments")
		}
	}
}

func TestNoisyCopyFallsWithFrequency(t *testing.T) {
	// A noisy copy of a map should correlate well at low frequency
	// and progressively worse at high frequency.
	r := rand.New(rand.NewSource(2))
	m := phantom.SindbisLike(32)
	noisy := m.Clone()
	_, _, _, std := m.Stats()
	for i := range noisy.Data {
		noisy.Data[i] += 1.5 * std * r.NormFloat64()
	}
	c, err := Compute(m, noisy, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	first := c.Points[0].CC
	last := c.Points[len(c.Points)-1].CC
	if first < 0.8 {
		t.Fatalf("low-frequency shell CC %g, want high", first)
	}
	if last >= first {
		t.Fatalf("FSC did not fall with frequency: first %g last %g", first, last)
	}
	res := c.ResolutionAt(0.5)
	if res <= c.Points[len(c.Points)-1].ResolutionA || res >= c.Points[0].ResolutionA {
		t.Fatalf("0.5 crossing %g Å outside curve range", res)
	}
}

func TestResolutionAtMonotoneInThreshold(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m := phantom.SindbisLike(24)
	noisy := m.Clone()
	_, _, _, std := m.Stats()
	for i := range noisy.Data {
		noisy.Data[i] += 2 * std * r.NormFloat64()
	}
	c, _ := Compute(m, noisy, 2.0)
	r9 := c.ResolutionAt(0.9)
	r5 := c.ResolutionAt(0.5)
	r1 := c.ResolutionAt(0.143)
	// A stricter threshold cannot claim finer resolution.
	if !(r9 >= r5 && r5 >= r1) {
		t.Fatalf("thresholds not monotone: 0.9→%g 0.5→%g 0.143→%g", r9, r5, r1)
	}
}

func TestShellResolutionLabels(t *testing.T) {
	m := phantom.SindbisLike(16)
	c, _ := Compute(m, m, 3.0)
	// Shell s of a 16-box at 3 Å/px: resolution = 16·3/s.
	for _, p := range c.Points {
		want := 16.0 * 3.0 / float64(p.Shell)
		if math.Abs(p.ResolutionA-want) > 1e-9 {
			t.Fatalf("shell %d labeled %g Å, want %g", p.Shell, p.ResolutionA, want)
		}
	}
}

func TestComputeParallelBitIdentical(t *testing.T) {
	// Per-plane partial sums merged in ascending x are the shared
	// float grouping of both paths, so the parallel curve must match
	// the serial one bit for bit, not merely to rounding.
	r := rand.New(rand.NewSource(4))
	m := phantom.SindbisLike(24)
	noisy := m.Clone()
	_, _, _, std := m.Stats()
	for i := range noisy.Data {
		noisy.Data[i] += std * r.NormFloat64()
	}
	serial, err := Compute(m, noisy, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 7, 8} {
		par, err := ComputeParallel(m, noisy, 2.0, w)
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Points) != len(serial.Points) {
			t.Fatalf("workers=%d: %d shells, want %d", w, len(par.Points), len(serial.Points))
		}
		for i := range par.Points {
			if par.Points[i] != serial.Points[i] {
				t.Fatalf("workers=%d shell %d: %+v != %+v", w, par.Points[i].Shell, par.Points[i], serial.Points[i])
			}
		}
	}
}

func TestComputeParallelValidation(t *testing.T) {
	a := volume.NewGrid(8)
	if _, err := ComputeParallel(a, volume.NewGrid(10), 2, 4); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := ComputeParallel(a, a, -1, 4); err == nil {
		t.Fatal("negative pixel size accepted")
	}
}

func TestComputeValidation(t *testing.T) {
	a := volume.NewGrid(8)
	b := volume.NewGrid(10)
	if _, err := Compute(a, b, 2); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := Compute(a, a, 0); err == nil {
		t.Fatal("zero pixel size accepted")
	}
}

func TestDominates(t *testing.T) {
	m := phantom.SindbisLike(16)
	c, _ := Compute(m, m, 2)
	worse := &Curve{PixelA: 2}
	for _, p := range c.Points {
		q := p
		q.CC -= 0.2
		worse.Points = append(worse.Points, q)
	}
	if !c.Dominates(worse, 0.9) {
		t.Fatal("unit curve should dominate degraded curve")
	}
	if worse.Dominates(c, 0.5) {
		t.Fatal("degraded curve should not dominate unit curve")
	}
}

func TestSSNR(t *testing.T) {
	// FSC 0.5 ↔ SSNR 2 (the classical justification for the 0.5
	// criterion); FSC 1/3 ↔ SSNR 1.
	if got := SSNR(0.5); math.Abs(got-2) > 1e-12 {
		t.Errorf("SSNR(0.5) = %g, want 2", got)
	}
	if got := SSNR(1.0 / 3); math.Abs(got-1) > 1e-12 {
		t.Errorf("SSNR(1/3) = %g, want 1", got)
	}
	if SSNR(-0.2) != 0 {
		t.Error("negative FSC must map to 0")
	}
	if !math.IsInf(SSNR(1), 1) {
		t.Error("FSC 1 must map to +Inf")
	}
}

func TestSSNRCurveMonotone(t *testing.T) {
	m := phantom.SindbisLike(16)
	c, _ := Compute(m, m, 2)
	ss := c.SSNRCurve()
	if len(ss) != len(c.Points) {
		t.Fatal("length mismatch")
	}
	for _, v := range ss {
		if !math.IsInf(v, 1) {
			t.Fatal("identical maps must have infinite SSNR everywhere")
		}
	}
}
