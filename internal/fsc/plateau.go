package fsc

// Plateau is the cycle driver's stopping rule over successive 0.5
// crossings: the refinement loop stops once the resolution has failed
// to improve by at least Eps Å for Window consecutive cycles. The
// paper phrases the criterion as "until the 3D electron density map
// cannot be further improved"; Eps and Window make "cannot" concrete.
//
// The rule is a pure fold over the observed resolutions, so a resumed
// job rebuilds the exact stopper state by replaying the journaled
// per-cycle crossings through a fresh Plateau.
type Plateau struct {
	// Eps is the minimum improvement of the 0.5 crossing (Å, toward
	// finer resolution) that counts as progress.
	Eps float64
	// Window is how many consecutive non-improving cycles stop the
	// run; ≤0 disables stopping (Observe then never returns stop).
	Window int
	// BestA is the finest (smallest) resolution observed so far; 0
	// until the first observation.
	BestA float64
	// Count is the current run of consecutive non-improving cycles.
	Count int
}

// Observe folds one cycle's 0.5-crossing resolution (Å) into the
// rule. improved reports that the cycle moved the best resolution by
// at least Eps (the first observation always improves); stop reports
// that Window consecutive cycles have now failed to.
func (p *Plateau) Observe(resolutionA float64) (improved, stop bool) {
	switch {
	case p.BestA == 0:
		improved = true
		p.BestA = resolutionA
	case p.BestA-resolutionA >= p.Eps:
		improved = true
		p.BestA = resolutionA
	default:
		// Sub-Eps gains still tighten the baseline, so a slow drip of
		// tiny improvements cannot masquerade as progress forever.
		if resolutionA < p.BestA {
			p.BestA = resolutionA
		}
	}
	if improved {
		p.Count = 0
	} else {
		p.Count++
	}
	return improved, p.Window > 0 && p.Count >= p.Window
}
