// Package align implements classical 2-D image alignment for particle
// views: rotational alignment via polar-resampled Fourier magnitudes
// (rotation-only, translation-invariant) and translational alignment
// via phase correlation with sub-pixel peak interpolation. These are
// the preprocessing primitives of the single-particle pipeline around
// the paper — pre-aligning boxed particles and building class averages
// before 3-D work begins.
package align

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fft"
	"repro/internal/fourier"
	"repro/internal/volume"
)

// RotationResult is the outcome of a rotational search.
type RotationResult struct {
	// AngleDeg is the in-plane rotation (degrees, counter-clockwise in
	// (j,k) index convention) that best maps b onto a.
	AngleDeg float64
	// Score is the normalized correlation of the polar magnitude
	// profiles at the optimum.
	Score float64
}

// Rotation finds the in-plane rotation aligning b to a. The Fourier
// magnitude of an image is invariant to translation and rotates with
// the image, so the two magnitude patterns are resampled on polar
// rings and circularly cross-correlated over the angle with a 1-D FFT.
// Because magnitude profiles are centro-symmetric (a ±180° ambiguity)
// and the correlation only pins the angle up to sign, the strongest
// correlation peaks seed four candidate rotations each, which are
// disambiguated by real-space correlation — making the result a true
// rotation in [0, 360) and Score the real-space image correlation at
// the optimum.
//
// nAngles sets the angular sampling of the polar profiles (e.g. 360
// for 0.5° steps over the half-circle); rings span radii 2..rmax.
func Rotation(a, b *volume.Image, nAngles int, rmax float64) (RotationResult, error) {
	if a.L != b.L {
		return RotationResult{}, fmt.Errorf("align: image sizes differ: %d vs %d", a.L, b.L)
	}
	if nAngles < 8 {
		return RotationResult{}, fmt.Errorf("align: nAngles must be ≥ 8, got %d", nAngles)
	}
	if rmax <= 2 || rmax > float64(a.L)/2 {
		rmax = float64(a.L) / 2
	}
	pa := polarMagnitude(fourier.ImageDFT(a), nAngles, rmax)
	pb := polarMagnitude(fourier.ImageDFT(b), nAngles, rmax)

	// Circular cross-correlation over angle, summed across rings, via
	// the 1-D FFT: corr = IFFT(FFT(pa)·conj(FFT(pb))).
	plan := fft.NewPlan(nAngles)
	acc := make([]complex128, nAngles)
	for ring := range pa {
		fa := make([]complex128, nAngles)
		fb := make([]complex128, nAngles)
		for i := 0; i < nAngles; i++ {
			fa[i] = complex(pa[ring][i], 0)
			fb[i] = complex(pb[ring][i], 0)
		}
		plan.Forward(fa)
		plan.Forward(fb)
		for i := 0; i < nAngles; i++ {
			acc[i] += fa[i] * complex(real(fb[i]), -imag(fb[i]))
		}
	}
	plan.Inverse(acc)

	// Top correlation peaks (local maxima), strongest first.
	type peak struct {
		idx int
		val float64
	}
	var peaks []peak
	for i := 0; i < nAngles; i++ {
		v := real(acc[i])
		if v >= real(acc[(i-1+nAngles)%nAngles]) && v > real(acc[(i+1)%nAngles]) {
			peaks = append(peaks, peak{i, v})
		}
	}
	sort.Slice(peaks, func(i, j int) bool { return peaks[i].val > peaks[j].val })
	if len(peaks) > 3 {
		peaks = peaks[:3]
	}

	// Each peak pins the rotation up to sign and a 180° flip; test all
	// four hypotheses in real space.
	best := RotationResult{Score: math.Inf(-1)}
	for _, p := range peaks {
		prev := real(acc[(p.idx-1+nAngles)%nAngles])
		next := real(acc[(p.idx+1)%nAngles])
		base := (float64(p.idx) + parabolicVertex(prev, p.val, next)) * 180 / float64(nAngles)
		for _, cand := range []float64{base, -base, base + 180, 180 - base} {
			cand = math.Mod(cand+720, 360)
			cc := volume.ImageCorrelation(a, Apply(b, cand, 0, 0))
			if cc > best.Score {
				best = RotationResult{AngleDeg: cand, Score: cc}
			}
		}
	}
	return best, nil
}

// polarMagnitude samples |F| on rings of radius 2..rmax at nAngles
// angular steps.
func polarMagnitude(f *volume.CImage, nAngles int, rmax float64) [][]float64 {
	nr := int(rmax) - 1
	out := make([][]float64, nr)
	for ri := 0; ri < nr; ri++ {
		r := float64(ri + 2)
		row := make([]float64, nAngles)
		for ai := 0; ai < nAngles; ai++ {
			// Rings live on [0, π): the other half is the Friedel mate.
			angle := float64(ai) * math.Pi / float64(nAngles)
			s, c := math.Sincos(angle)
			v := sampleC(f, r*c, r*s)
			row[ai] = math.Hypot(real(v), imag(v))
		}
		out[ri] = row
	}
	return out
}

// sampleC bilinearly samples the centred transform at signed
// frequency (h, k).
func sampleC(f *volume.CImage, h, k float64) complex128 {
	l := f.L
	h0, k0 := int(math.Floor(h)), int(math.Floor(k))
	fh, fk := h-float64(h0), k-float64(k0)
	var sum complex128
	for dh := 0; dh <= 1; dh++ {
		wh := 1 - fh
		if dh == 1 {
			wh = fh
		}
		if wh == 0 {
			continue
		}
		hi := wrapIdx(h0+dh, l)
		for dk := 0; dk <= 1; dk++ {
			wk := 1 - fk
			if dk == 1 {
				wk = fk
			}
			if wk == 0 {
				continue
			}
			ki := wrapIdx(k0+dk, l)
			sum += complex(wh*wk, 0) * f.Data[hi*l+ki]
		}
	}
	return sum
}

func wrapIdx(f, l int) int {
	f %= l
	if f < 0 {
		f += l
	}
	return f
}

// TranslationResult is the outcome of a translational search.
type TranslationResult struct {
	// DX and DY are the shift in pixels that maps b onto a:
	// a(j,k) ≈ b(j−DX, k−DY).
	DX, DY float64
	// Score is the phase-correlation peak height (1 for identical
	// images up to pure translation).
	Score float64
}

// Translation finds the shift aligning b to a by phase correlation:
// the normalized cross-power spectrum of two shifted copies is a pure
// phase ramp whose inverse transform is a delta at the shift. The peak
// is located to sub-pixel precision by per-axis parabolic fits.
func Translation(a, b *volume.Image) (TranslationResult, error) {
	if a.L != b.L {
		return TranslationResult{}, fmt.Errorf("align: image sizes differ: %d vs %d", a.L, b.L)
	}
	l := a.L
	fa := fourier.ImageDFT(a)
	fb := fourier.ImageDFT(b)
	cross := volume.NewCImage(l)
	for i := range cross.Data {
		v := fa.Data[i] * complex(real(fb.Data[i]), -imag(fb.Data[i]))
		if m := math.Hypot(real(v), imag(v)); m > 1e-12 {
			v /= complex(m, 0)
		}
		cross.Data[i] = v
	}
	fft.NewPlan2D(l, l).Inverse(cross.Data)
	bestJ, bestK, bestVal := 0, 0, math.Inf(-1)
	for j := 0; j < l; j++ {
		for k := 0; k < l; k++ {
			if v := real(cross.Data[j*l+k]); v > bestVal {
				bestVal = v
				bestJ, bestK = j, k
			}
		}
	}
	at := func(j, k int) float64 {
		return real(cross.Data[wrapIdx(j, l)*l+wrapIdx(k, l)])
	}
	oj := parabolicVertex(at(bestJ-1, bestK), bestVal, at(bestJ+1, bestK))
	ok := parabolicVertex(at(bestJ, bestK-1), bestVal, at(bestJ, bestK+1))
	dx := signedShift(bestJ, l) + oj
	dy := signedShift(bestK, l) + ok
	return TranslationResult{DX: dx, DY: dy, Score: bestVal}, nil
}

// signedShift maps a correlation peak index to a signed shift.
func signedShift(idx, l int) float64 {
	if idx > l/2 {
		return float64(idx - l)
	}
	return float64(idx)
}

// parabolicVertex fits a parabola through (−1, ym), (0, y0), (+1, yp)
// and returns the vertex offset in [−0.5, 0.5].
func parabolicVertex(ym, y0, yp float64) float64 {
	den := ym - 2*y0 + yp
	if den >= 0 {
		return 0
	}
	off := 0.5 * (ym - yp) / den
	return math.Max(-0.5, math.Min(0.5, off))
}

// Apply resamples image b by the given rotation (degrees, about the
// image centre) and then shift, producing the aligned copy. Bilinear
// sampling; pixels from outside are zero.
func Apply(b *volume.Image, angleDeg, dx, dy float64) *volume.Image {
	l := b.L
	c := float64(l / 2)
	s, co := math.Sincos(-angleDeg * math.Pi / 180) // inverse rotation
	out := volume.NewImage(l)
	for j := 0; j < l; j++ {
		for k := 0; k < l; k++ {
			u := float64(j) - c - dx
			v := float64(k) - c - dy
			sj := co*u - s*v + c
			sk := s*u + co*v + c
			out.Set(j, k, b.Interp(sj, sk))
		}
	}
	return out
}

// ClassAverage aligns every image to the reference (rotation then
// translation) and returns their pixel-wise mean — the classical way
// to beat down noise before any 3-D work. nAngles and rmax parameterize
// the rotational search. Images that fail to align are still included
// (alignment never errors for same-size inputs), so the output always
// averages len(images) aligned copies.
func ClassAverage(ref *volume.Image, images []*volume.Image, nAngles int, rmax float64) (*volume.Image, error) {
	if len(images) == 0 {
		return nil, fmt.Errorf("align: no images to average")
	}
	sum := volume.NewImage(ref.L)
	for _, im := range images {
		rot, err := Rotation(ref, im, nAngles, rmax)
		if err != nil {
			return nil, err
		}
		derot := Apply(im, rot.AngleDeg, 0, 0)
		tr, err := Translation(ref, derot)
		if err != nil {
			return nil, err
		}
		aligned := Apply(derot, 0, tr.DX, tr.DY)
		for i, v := range aligned.Data {
			sum.Data[i] += v
		}
	}
	sum.Scale(1 / float64(len(images)))
	return sum, nil
}
