package align

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/phantom"
	"repro/internal/projection"
	"repro/internal/volume"
)

// testImage builds a compact asymmetric test image by projecting an
// asymmetric phantom.
func testImage(l int) *volume.Image {
	g := phantom.Asymmetric(l, 8, 1)
	g.SphericalMask(0.38 * float64(l))
	return projection.Real(g, geom.Euler{Theta: 40, Phi: 70, Omega: 15})
}

func TestTranslationInteger(t *testing.T) {
	a := testImage(32)
	for _, shift := range [][2]float64{{3, -2}, {-5, 4}, {0, 0}, {7, 7}} {
		b := a.Shift(-shift[0], -shift[1]) // b shifted so a(j,k)=b(j-dx,k-dy)
		res, err := Translation(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.DX-shift[0]) > 0.3 || math.Abs(res.DY-shift[1]) > 0.3 {
			t.Errorf("shift %v: found (%.2f, %.2f)", shift, res.DX, res.DY)
		}
	}
}

func TestTranslationSubPixel(t *testing.T) {
	a := testImage(32)
	b := a.Shift(-1.4, 2.3)
	res, err := Translation(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.DX-1.4) > 0.35 || math.Abs(res.DY+2.3) > 0.35 {
		t.Fatalf("sub-pixel shift found (%.2f, %.2f), want (1.4, -2.3)", res.DX, res.DY)
	}
}

func TestTranslationScoreIdentical(t *testing.T) {
	a := testImage(24)
	res, err := Translation(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.DX) > 1e-6 || math.Abs(res.DY) > 1e-6 {
		t.Fatalf("identical images report shift (%.3f, %.3f)", res.DX, res.DY)
	}
	if res.Score < 0.9 {
		t.Fatalf("identical-image phase correlation peak %.3f", res.Score)
	}
}

func circDist(a, b float64) float64 {
	d := math.Mod(math.Abs(a-b), 360)
	if d > 180 {
		d = 360 - d
	}
	return d
}

func TestRotationRecovery(t *testing.T) {
	a := testImage(40)
	for _, angle := range []float64{10, 45, 90, 137, 230, 317} {
		b := Apply(a, -angle, 0, 0) // rotate a by −angle: aligning b back needs +angle
		res, err := Rotation(a, b, 360, 15)
		if err != nil {
			t.Fatal(err)
		}
		if d := circDist(res.AngleDeg, angle); d > 3 {
			t.Errorf("angle %g: found %.1f° (err %.1f°, score %.3f)", angle, res.AngleDeg, d, res.Score)
		}
		if res.Score < 0.8 {
			t.Errorf("angle %g: low real-space score %.3f", angle, res.Score)
		}
	}
}

func TestRotationTranslationInvariance(t *testing.T) {
	// The rotational search must tolerate an unknown translation —
	// that is the point of using Fourier magnitudes.
	a := testImage(40)
	b := Apply(a, -60, 2.5, -1.5)
	res, err := Rotation(a, b, 360, 15)
	if err != nil {
		t.Fatal(err)
	}
	if d := circDist(res.AngleDeg, 60); d > 4 {
		t.Fatalf("rotation under translation: found %.1f°, want 60°", res.AngleDeg)
	}
}

func TestApplyRoundTrip(t *testing.T) {
	a := testImage(32)
	b := Apply(a, 30, 2, -1)
	back := Apply(b, -30, 0, 0)
	// Undo the shift: rotating by −30 maps the rotated content back;
	// then shift by the rotated offset. Just check alignment end to
	// end instead: align b to a and apply the inverse.
	res, err := Translation(a, back)
	if err != nil {
		t.Fatal(err)
	}
	realigned := Apply(b, -30, -res.DX, -res.DY)
	_ = realigned
	if cc := volume.ImageCorrelation(a, Apply(b, -30, res.DX, res.DY)); cc < 0.9 {
		// Either sign convention must recover most of the image.
		if cc2 := volume.ImageCorrelation(a, realigned); cc2 < 0.9 {
			t.Fatalf("apply/align round trip correlations %.3f / %.3f", cc, cc2)
		}
	}
}

func TestAlignmentPipeline(t *testing.T) {
	// Full 2-D alignment: recover rotation, undo it, recover shift,
	// undo it — the aligned copy must match the reference.
	a := testImage(40)
	b := Apply(a, -75, 3, 2)
	rot, err := Rotation(a, b, 720, 15)
	if err != nil {
		t.Fatal(err)
	}
	derotated := Apply(b, rot.AngleDeg, 0, 0)
	tr, err := Translation(a, derotated)
	if err != nil {
		t.Fatal(err)
	}
	aligned := Apply(derotated, 0, tr.DX, tr.DY)
	if cc := volume.ImageCorrelation(a, aligned); cc < 0.85 {
		t.Fatalf("aligned correlation %.3f (rot %.1f°, shift %.2f,%.2f)",
			cc, rot.AngleDeg, tr.DX, tr.DY)
	}
}

func TestValidation(t *testing.T) {
	a := volume.NewImage(16)
	b := volume.NewImage(18)
	if _, err := Rotation(a, b, 360, 6); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := Rotation(a, a, 4, 6); err == nil {
		t.Fatal("tiny nAngles accepted")
	}
	if _, err := Translation(a, b); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestClassAverageBeatsSingleImage(t *testing.T) {
	// Noisy rotated/shifted copies of one view, aligned and averaged,
	// must resemble the clean view more than any single noisy copy.
	rng := rand.New(rand.NewSource(3))
	clean := testImage(36)
	_, _, _, std := clean.Stats()
	var noisy []*volume.Image
	for i := 0; i < 8; i++ {
		im := Apply(clean, -float64(i*40), float64(i%3)-1, float64(i%2))
		for j := range im.Data {
			im.Data[j] += std * rng.NormFloat64()
		}
		noisy = append(noisy, im)
	}
	avg, err := ClassAverage(clean, noisy, 360, 13)
	if err != nil {
		t.Fatal(err)
	}
	ccAvg := volume.ImageCorrelation(clean, avg)
	ccOne := volume.ImageCorrelation(clean, Apply(noisy[0], 0, 0, 0))
	if ccAvg <= ccOne {
		t.Fatalf("class average (%.3f) not better than one noisy copy (%.3f)", ccAvg, ccOne)
	}
	if ccAvg < 0.85 {
		t.Fatalf("class average correlation %.3f too low", ccAvg)
	}
}

func TestClassAverageEmpty(t *testing.T) {
	if _, err := ClassAverage(testImage(16), nil, 90, 6); err == nil {
		t.Fatal("empty image list accepted")
	}
}
