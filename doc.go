// Package repro reproduces "Orientation Refinement of Virus Structures
// with Unknown Symmetry" (Ji, Marinescu, Zhang, Baker; IPPS/IPDPS
// 2003): a parallel, Fourier-domain, sliding-window multi-resolution
// algorithm for refining the orientations of single-particle cryo-TEM
// views without assuming any particle symmetry.
//
// The implementation lives under internal/ (see DESIGN.md for the full
// inventory): internal/core is the refinement algorithm itself;
// internal/fft, fourier, volume, projection, ctf, reconstruct and fsc
// are the numerical substrates; internal/cluster and parfft simulate
// the distributed-memory machine of the paper's evaluation;
// internal/phantom and micrograph synthesize the experimental data;
// internal/baseline and symmetry provide the comparison methods and
// the symmetry-group detector; internal/workload drives every table
// and figure of the paper. Executables are under cmd/ and runnable
// examples under examples/.
//
// The benchmarks in this package (bench_test.go) regenerate each table
// and figure of the paper's evaluation at simulator scale; run
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured record.
package repro
